"""The ``clarify`` command-line front end.

Subcommands::

    clarify add        one incremental update (interactive disambiguation)
    clarify overlaps   the §3 overlap analysis over a config file
    clarify compare    differential examples between two route-maps
    clarify eval       the §5 evaluation (Figure 4 + global policies)
    clarify corpus     generate a §3 synthetic corpus and report stats
    clarify trace      one instrumented cycle: span tree + metric summary
    clarify lint       symbolic static analysis: shadowed/conflicting
                       rules, dangling references, naming drift
    clarify replay     re-drive a recorded journal with zero LLM calls
                       and verify it matches byte for byte
    clarify bench-check  diff a benchmark metric snapshot against the
                       committed baseline (the perf-regression gate)
    clarify serve      serve many sessions concurrently over a JSONL
                       stdin/stdout request loop (admission control,
                       per-request deadlines, LLM deduplication); with
                       --metrics-port, a live /metrics endpoint and a
                       wide-event request log
    clarify loadgen    drive the serving layer with a deterministic
                       seeded campus/cloud intent mix; optionally check
                       serial-vs-pooled outcome identity, SLO burn
                       rates, and telemetry overhead
    clarify tail       follow a wide-event request log and print rolling
                       p50/p95 latency and error rate

``clarify add`` reads an existing IOS configuration, runs the full
Clarify cycle for an English intent, asks the differential questions on
stdin, and prints the updated configuration to stdout.  ``add``,
``trace``, and ``eval`` accept ``--journal PATH`` to record a replayable
session journal (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.config import parse_config, render_config
from repro.core import ClarifySession, DisambiguationMode, ScriptedOracle
from repro.core.errors import ClarifyError
from repro.core.oracle import DisambiguationQuestion
from repro.llm.simulated import SimulatedLLM

#: The §2 walkthrough scenario, used by ``clarify trace`` when no
#: configuration/intent is supplied (same inputs as the paper's Fig. 2).
WALKTHROUGH_CONFIG = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

WALKTHROUGH_INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)

WALKTHROUGH_TARGET = "ISP_OUT"


class StdioOracle:
    """Asks differential questions on the terminal."""

    def __init__(self, out=sys.stdout, inp=sys.stdin) -> None:
        self._out = out
        self._in = inp

    def choose(self, question: DisambiguationQuestion) -> int:
        self._out.write(question.render() + "\n")
        self._out.flush()
        while True:
            line = self._in.readline()
            if not line:
                raise ClarifyError("no answer on stdin")
            answer = line.strip()
            if answer in ("1", "2"):
                return int(answer)
            self._out.write("Please answer 1 or 2: ")
            self._out.flush()


def _read_config(path: Optional[str]):
    if path is None:
        return parse_config("")
    with open(path) as handle:
        return parse_config(handle.read())


@contextlib.contextmanager
def _journal_scope(path: Optional[str]):
    """Record a session journal to ``path`` for the enclosed block."""
    from repro import obs

    if path is None:
        yield None
        return
    with obs.JournalRecorder(path) as journal:
        with obs.journaling(journal):
            yield journal


def cmd_add(args: argparse.Namespace) -> int:
    store = _read_config(args.config)
    if args.answers:
        oracle = ScriptedOracle([int(a) for a in args.answers.split(",")])
    else:
        oracle = StdioOracle()
    mode = (
        DisambiguationMode.TOP_BOTTOM
        if args.top_bottom
        else DisambiguationMode.FULL
    )
    with _journal_scope(args.journal):
        session = ClarifySession(
            store=store, llm=SimulatedLLM(), oracle=oracle, mode=mode
        )
        try:
            report = session.request(args.intent, args.target)
        except (ClarifyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(
        f"! inserted at position {report.position} "
        f"({report.llm_calls} LLM calls, {report.questions} questions)",
        file=sys.stderr,
    )
    if args.diff:
        print(report.diff)
    else:
        print(render_config(session.store))
    return 0


def cmd_overlaps(args: argparse.Namespace) -> int:
    from repro.overlap import (
        AclCorpusStats,
        RouteMapCorpusStats,
        acl_overlap_report,
        route_map_overlap_report,
    )

    store = _read_config(args.config)
    acl_reports = [
        acl_overlap_report(acl, with_witnesses=args.verbose)
        for acl in store.acls()
    ]
    rm_reports = [
        route_map_overlap_report(rm, store, with_witnesses=args.verbose)
        for rm in store.route_maps()
    ]
    if acl_reports:
        print(AclCorpusStats.collect(acl_reports).render())
    if rm_reports:
        print(RouteMapCorpusStats.collect(rm_reports).render())
    if args.verbose:
        for report in acl_reports + rm_reports:
            for pair in report.pairs:
                kind = "conflict" if pair.conflicting else "overlap"
                extra = " (subset)" if pair.subset else ""
                print(f"{report.name}: {pair.seq_a} ~ {pair.seq_b}: {kind}{extra}")
                if pair.witness is not None:
                    print(pair.witness.render(indent="    "))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_route_policies

    store_a = _read_config(args.config_a)
    store_b = _read_config(args.config_b)
    differences = compare_route_policies(
        store_a.route_map(args.name),
        store_b.route_map(args.name),
        store_a,
        store_b,
        max_differences=args.limit,
    )
    if not differences:
        print("the two route-maps are behaviourally equivalent")
        return 0
    for idx, diff in enumerate(differences, start=1):
        print(f"=== difference {idx} ===")
        print(diff.render())
        print()
    return 2


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.evalcase import build_figure3, figure4_rows

    with _journal_scope(args.journal):
        if args.from_configs:
            from repro.evalcase.devices import build_figure3_from_files

            result = build_figure3_from_files()
            print("(network reassembled from rendered device files)")
        else:
            result = build_figure3()
    print("Figure 4: router statistics")
    print(f"{'Router':<8}{'#Route-maps':<14}{'#LLM calls':<12}{'#Disambiguation'}")
    for name, maps, calls, interactions in figure4_rows(result.stats):
        print(f"{name:<8}{maps:<14}{calls:<12}{interactions}")
    print()
    print("Global policies:")
    ok = True
    for policy, holds in result.policy_results.items():
        print(f"  {policy}: {'PASS' if holds else 'FAIL'}")
        ok = ok and holds
    return 0 if ok else 1


def cmd_list_add(args: argparse.Namespace) -> int:
    """Disambiguated insertion into a prefix-list (the §7 extension)."""
    from repro.config.lists import PrefixListEntry
    from repro.core.listinsert import disambiguate_prefix_list_entry
    from repro.netaddr import Ipv4Prefix

    store = _read_config(args.config)
    try:
        entry = PrefixListEntry(
            seq=0,
            action=args.action,
            prefix=Ipv4Prefix.parse(args.prefix),
            ge=args.ge,
            le=args.le,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.answers:
        oracle = ScriptedOracle([int(a) for a in args.answers.split(",")])
    else:
        oracle = StdioOracle()
    try:
        result = disambiguate_prefix_list_entry(
            store, args.target, entry, oracle
        )
    except ClarifyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"! inserted at position {result.position} "
        f"({result.question_count} questions)",
        file=sys.stderr,
    )
    print(render_config(result.store))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one Clarify cycle under a recorder; print spans + metrics.

    With no arguments this traces the paper's §2 walkthrough (the
    ``ISP_OUT`` policy and intent), so it doubles as an instrumentation
    smoke test: the cross-check section asserts that the recorded
    counters agree with the cycle's :class:`~repro.core.UpdateReport`.
    """
    from repro import obs
    from repro.core import FirstOptionOracle

    if args.config:
        store = _read_config(args.config)
    else:
        store = parse_config(WALKTHROUGH_CONFIG)
    intent = args.intent if args.intent else WALKTHROUGH_INTENT
    if args.answers:
        oracle = ScriptedOracle([int(a) for a in args.answers.split(",")])
    else:
        oracle = FirstOptionOracle()
    mode = (
        DisambiguationMode.TOP_BOTTOM
        if args.top_bottom
        else DisambiguationMode.FULL
    )
    recorder = obs.Recorder()
    with _journal_scope(args.journal), obs.recording(recorder):
        session = ClarifySession(
            store=store, llm=SimulatedLLM(), oracle=oracle, mode=mode
        )
        try:
            report = session.request(intent, args.target)
        except (ClarifyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        print(obs.to_json(recorder))
        return 0
    print("== span tree ==")
    print(obs.render_span_tree(recorder.roots))
    print()
    print("== metrics ==")
    print(obs.render_metrics(recorder))
    print()
    print("== cross-check vs UpdateReport ==")
    checks = (
        ("llm calls", report.llm_calls, recorder.counter("llm.calls")),
        ("questions", report.questions, recorder.counter("disambiguation.questions")),
        ("attempts", report.attempts, recorder.counter("synthesis.attempts")),
    )
    ok = True
    for label, from_report, from_metrics in checks:
        match = from_report == from_metrics
        ok = ok and match
        print(
            f"{label}: report={from_report} metrics={from_metrics} "
            f"{'OK' if match else 'MISMATCH'}"
        )
    return 0 if ok else 1


def cmd_corpus(args: argparse.Namespace) -> int:
    from repro.overlap import (
        AclCorpusStats,
        RouteMapCorpusStats,
        acl_overlap_report,
        route_map_overlap_report,
    )

    if args.which == "cloud":
        from repro.synth import generate_cloud_corpus

        corpus = generate_cloud_corpus(seed=args.seed, scale=args.scale)
    else:
        from repro.synth import generate_campus_corpus
        from repro.synth.campus import TOTAL_ACLS, TOTAL_ROUTE_MAPS

        corpus = generate_campus_corpus(
            seed=args.seed,
            total_acls=max(1, round(TOTAL_ACLS * args.scale)),
            route_maps=max(1, round(TOTAL_ROUTE_MAPS * args.scale)),
        )
    acl_stats = AclCorpusStats.collect(
        acl_overlap_report(acl) for acl in corpus.acls
    )
    rm_stats = RouteMapCorpusStats.collect(
        route_map_overlap_report(rm, corpus.store) for rm in corpus.route_maps
    )
    print(acl_stats.render())
    print()
    print(rm_stats.render())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run a §3 overlap study (or the §5 evaluation) as a parallel campaign.

    With ``--benchmark`` the study runs twice — serial, then across the
    worker pool — asserting identical results and reporting both times.
    """
    import time

    from repro.perf import campaign

    workers = 1 if args.serial else args.workers

    def run(worker_count: Optional[int], pool: Optional[str] = None):
        pool = pool if pool is not None else args.pool
        if args.which == "campus":
            from repro.synth.campus import TOTAL_ACLS, TOTAL_ROUTE_MAPS

            acl_stats, rm_stats, _, _ = campaign.campus_overlap_study(
                workers=worker_count,
                chunks=args.chunks,
                seed=args.seed if args.seed is not None else 1421,
                total_acls=max(1, round(TOTAL_ACLS * args.scale)),
                route_maps=max(1, round(TOTAL_ROUTE_MAPS * args.scale)),
                pool=pool,
            )
            return acl_stats, rm_stats
        if args.which == "cloud":
            acl_stats, rm_stats, _ = campaign.cloud_overlap_study(
                workers=worker_count,
                chunks=args.chunks,
                seed=args.seed if args.seed is not None else 2025,
                scale=args.scale,
                pool=pool,
            )
            return acl_stats, rm_stats
        return campaign.evaluation_campaign(
            runs=args.runs, workers=worker_count, chunks=args.chunks, pool=pool
        ).results

    def render(outcome) -> None:
        if args.which == "eval":
            rows, policies = outcome[0]
            print("Figure 4: router statistics")
            for name, maps, calls, interactions in rows:
                print(f"  {name}: {maps} route-maps, {calls} LLM calls, "
                      f"{interactions} disambiguations")
            for policy, holds in policies.items():
                print(f"  {policy}: {'PASS' if holds else 'FAIL'}")
            return
        acl_stats, rm_stats = outcome
        print(acl_stats.render())
        print()
        print(rm_stats.render())

    if args.benchmark:
        start = time.perf_counter()
        serial_outcome = run(1, pool="serial")
        serial_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        parallel_outcome = run(workers)
        parallel_elapsed = time.perf_counter() - start
        if serial_outcome != parallel_outcome:
            print("error: serial and parallel results differ", file=sys.stderr)
            return 2
        render(parallel_outcome)
        print()
        print(f"serial:   {serial_elapsed:.2f}s")
        print(
            f"parallel: {parallel_elapsed:.2f}s "
            f"({args.workers or campaign.default_workers()} workers)"
        )
        return 0

    render(run(workers))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Lint a configuration (or a §3 corpus) with the symbolic checks.

    Exit status is 0 when no diagnostic reaches the ``--fail-on``
    threshold (and, in corpus mode, the archetype cross-check matches),
    1 otherwise.
    """
    from repro.lint import lint_campus_corpus, lint_store, render_json, render_text
    from repro.lint.diagnostics import Severity

    select = args.select.split(",") if args.select else None
    threshold = (
        None if args.fail_on == "none" else Severity.parse(args.fail_on)
    )
    with_witnesses = not args.no_witness

    if args.corpus == "campus":
        from repro.synth import generate_campus_corpus
        from repro.synth.campus import TOTAL_ACLS, TOTAL_ROUTE_MAPS

        corpus = generate_campus_corpus(
            seed=args.seed,
            total_acls=max(1, round(TOTAL_ACLS * args.scale)),
            route_maps=max(1, round(TOTAL_ROUTE_MAPS * args.scale)),
        )
        result = lint_campus_corpus(corpus, with_witnesses=with_witnesses)
        print(result.render())
        return 0 if result.matches_expected else 1
    if args.corpus == "cloud":
        from repro.synth import generate_cloud_corpus

        corpus = generate_cloud_corpus(seed=args.seed, scale=args.scale)
        store = corpus.store
        title = "cloud corpus"
    elif args.config:
        store = _read_config(args.config)
        title = args.config
    else:
        store = parse_config(WALKTHROUGH_CONFIG)
        title = "walkthrough (§2 ISP_OUT sample)"

    report = lint_store(store, select=select, with_witnesses=with_witnesses)
    if args.format == "json":
        print(render_json(report, title=title))
    else:
        print(render_text(report, title=title))
    return 1 if report.fails(threshold) else 0


def cmd_netlint(args: argparse.Namespace) -> int:
    """Network-wide static analysis over a whole device set.

    Exit status: 0 clean, 1 when a finding reaches the ``--fail-on``
    threshold, 3 when ``--baseline`` is given and the rendered JSON
    report differs from the blessed baseline byte for byte.
    """
    import os
    import tempfile

    from repro.config.device import parse_device
    from repro.lint import render_json, render_text
    from repro.lint.diagnostics import Severity
    from repro.lint.netwide import (
        analyze_network,
        default_contracts,
        load_contracts,
        seed_devices,
    )

    threshold = (
        None if args.fail_on == "none" else Severity.parse(args.fail_on)
    )

    if args.devices:
        devices = []
        for path in args.devices:
            with open(path) as handle:
                devices.append(parse_device(handle.read()))
        title = f"{len(devices)} device file(s)"
    elif args.corpus == "campus":
        from repro.synth import generate_campus_corpus
        from repro.synth.campus import TOTAL_ACLS, TOTAL_ROUTE_MAPS

        corpus = generate_campus_corpus(
            seed=args.seed,
            total_acls=max(1, round(TOTAL_ACLS * args.scale)),
            route_maps=max(1, round(TOTAL_ROUTE_MAPS * args.scale)),
        )
        devices = corpus.devices(args.device_count)
        title = f"campus corpus ({len(devices)} devices)"
    elif args.corpus == "cloud":
        from repro.synth import generate_cloud_corpus

        corpus = generate_cloud_corpus(seed=args.seed, scale=args.scale)
        devices = corpus.devices(args.device_count)
        title = f"cloud corpus ({len(devices)} devices)"
    else:
        devices = seed_devices(
            inject_shadow=args.inject_shadow,
            inject_drift=args.inject_drift,
            inject_route_shadow=args.inject_route_shadow,
        )
        title = f"seeded demo topology ({len(devices)} devices)"

    contracts = ()
    if args.contracts == "default":
        contracts = default_contracts()
    elif args.contracts:
        contracts = load_contracts(args.contracts)

    report = analyze_network(
        devices,
        contracts=contracts,
        workers=args.workers,
        chunks=args.chunks,
        pool=args.pool,
    )
    if args.title:
        title = args.title
    rendered_json = render_json(report, title=title)
    if args.format == "json":
        print(rendered_json)
    else:
        print(render_text(report, title=title))

    if args.output:
        directory = os.path.dirname(args.output) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(rendered_json)
                handle.write("\n")
            os.replace(tmp_path, args.output)
        except BaseException:
            os.unlink(tmp_path)
            raise

    if args.baseline:
        try:
            with open(args.baseline) as handle:
                blessed = handle.read()
        except OSError as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 3
        if blessed.rstrip("\n") != rendered_json.rstrip("\n"):
            print(
                f"BASELINE MISMATCH: report differs from {args.baseline}; "
                "regenerate with --output if the change is intended",
                file=sys.stderr,
            )
            return 3

    return 1 if report.fails(threshold) else 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-drive a recorded journal and verify it matches byte for byte.

    Exit status: 0 when the replayed session reproduces the journal
    exactly (same configs, diffs, verdicts, questions — all with zero
    LLM or oracle calls), 2 on divergence, 1 on a malformed journal.
    """
    import json as _json

    from repro import obs
    from repro.obs.replay import ReplayError, replay_journal

    try:
        events = obs.read_journal(args.journal)
    except (OSError, obs.JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        result = replay_journal(events)
    except (ReplayError, ClarifyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        payload = {
            "ok": result.ok,
            "cycles": result.cycles,
            "events": len(result.recorded_events),
            "matched_events": result.matched_events,
            "llm_calls_served": result.llm_calls_served,
            "answers_served": result.answers_served,
        }
        if result.divergence is not None:
            payload["divergence"] = {
                "seq": result.divergence.seq,
                "kind": result.divergence.kind,
                "detail": result.divergence.detail,
            }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.ok else 2
    print(
        f"replayed {result.cycles} cycle{'s' if result.cycles != 1 else ''} "
        f"({result.llm_calls_served} recorded LLM responses, "
        f"{result.answers_served} recorded answers, 0 live calls)"
    )
    if result.ok:
        print(
            f"journal verified: all {len(result.recorded_events)} events "
            "reproduced exactly"
        )
        return 0
    print(
        f"DIVERGED: {result.matched_events}/{len(result.recorded_events)} "
        "events matched",
        file=sys.stderr,
    )
    if args.divergence and result.divergence is not None:
        print(result.divergence.render(), file=sys.stderr)
    else:
        print("(re-run with --divergence for the first mismatch)", file=sys.stderr)
    return 2


def cmd_bench_check(args: argparse.Namespace) -> int:
    """Diff a benchmark metric snapshot against the committed baseline.

    Counter mismatches are behavioural regressions and always fail;
    ``span.*`` timing regressions fail unless ``--timing-warn-only``.
    With ``--slo-report`` a ``clarify loadgen --output`` artifact's SLO
    verdict is checked too (``--slo-only`` skips the snapshot diff).
    With ``--perf-snapshot`` the campaign scaling contract inside a
    ``BENCH_perf.json`` artifact is checked: parallel must not lose to
    serial by more than ``--campaign-tolerance`` and the serial/parallel
    results must have been identical (``--perf-only`` skips the
    snapshot diff).  Exit status: 0 clean, 2 on regression, an alerting
    SLO, or a scaling violation, 1 on unreadable snapshots/artifacts.
    """
    import json as _json

    from repro.obs import regress

    perf_failures: List[str] = []
    if args.perf_snapshot:
        try:
            with open(args.perf_snapshot, "r", encoding="utf-8") as handle:
                perf = _json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read perf snapshot: {exc}", file=sys.stderr)
            return 1
        block = perf.get("campaign")
        if not isinstance(block, dict):
            print(
                f"error: {args.perf_snapshot} carries no campaign block "
                "(regenerate with the perf benchmark suite)",
                file=sys.stderr,
            )
            return 1
        try:
            serial_s = float(block["serial_s"])
            parallel_s = float(block["parallel_2worker_s"])
        except (KeyError, TypeError, ValueError):
            print(
                f"error: {args.perf_snapshot} campaign block is missing "
                "serial_s/parallel_2worker_s timings",
                file=sys.stderr,
            )
            return 1
        if not block.get("identical", False):
            perf_failures.append(
                "campaign serial and parallel results were NOT identical"
            )
        allowed = serial_s * (1.0 + args.campaign_tolerance)
        if parallel_s > allowed:
            perf_failures.append(
                f"campaign parallel_2worker_s {parallel_s:.4f}s exceeds "
                f"serial_s {serial_s:.4f}s by more than "
                f"{args.campaign_tolerance:.0%} (limit {allowed:.4f}s)"
            )
        for failure in perf_failures:
            print(f"PERF SCALING: {failure}", file=sys.stderr)
        if not perf_failures:
            print(
                f"campaign scaling: parallel {parallel_s:.4f}s vs serial "
                f"{serial_s:.4f}s (identical results) ok"
            )
        if args.perf_only:
            return 2 if perf_failures else 0

    slo_failures: List[str] = []
    if args.slo_report:
        try:
            with open(args.slo_report, "r", encoding="utf-8") as handle:
                artifact = _json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read SLO report: {exc}", file=sys.stderr)
            return 1
        slo_block = (
            artifact.get("loadgen", {}).get("telemetry", {}).get("slo")
        )
        if slo_block is None:
            print(
                f"error: {args.slo_report} carries no telemetry/slo block "
                "(run clarify loadgen with telemetry on)",
                file=sys.stderr,
            )
            return 1
        alerting = slo_block.get("alerting", [])
        if alerting:
            slo_failures = [str(name) for name in alerting]
            for name in slo_failures:
                print(f"SLO ALERTING: {name}", file=sys.stderr)
        else:
            print(
                f"slo: {len(slo_block.get('objectives', []))} objective(s) ok "
                f"over {slo_block.get('events', 0)} event(s)"
            )
        if args.slo_only:
            return 2 if slo_failures else 0

    try:
        baseline = regress.load_snapshot(args.baseline)
        current = regress.load_snapshot(args.current)
        tolerances = regress.Tolerances(
            counter_rel=args.counter_rel,
            timing_max_ratio=args.timing_max_ratio,
            timing_warn_only=args.timing_warn_only,
        )
        report = regress.compare_snapshots(baseline, current, tolerances)
    except regress.SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(regress.render_json(report))
    else:
        print(regress.render_text(report, verbose=args.verbose))
    return 0 if report.ok and not slo_failures and not perf_failures else 2


def _serve_router(args: argparse.Namespace) -> int:
    """``clarify serve --shards N``: the thin router over shard processes.

    Speaks the same JSONL protocol as a single-process serve loop, but
    routes each command to its session's ring-assigned shard
    (:mod:`repro.serve.shard`) and applies router-side admission
    control.  Two extra operations drive chaos drills::

        {"op": "kill-shard", "shard": 0}
        {"op": "restart-shard", "shard": 0}

    ``restart-shard`` respawns the shard with ``--restore``; the reply
    carries how many sessions the shard rebuilt from its journals.
    """
    import json as _json

    from repro.serve.service import AdmissionError
    from repro.serve.shard import ClusterError, ShardedCluster

    out = sys.stdout
    cluster = ShardedCluster(
        shards=args.shards,
        workers_per_shard=args.shard_workers or args.workers,
        store_root=args.store_dir,
        high_water=args.high_water or 32,
        max_attempts=args.max_attempts,
        backend=args.backend,
        deadline_s=args.deadline,
    )

    def reply(tag: Optional[str] = None, **payload) -> None:
        if tag is not None:
            payload["tag"] = tag
        out.write(_json.dumps(payload, sort_keys=True) + "\n")
        out.flush()

    def relay(tag: Optional[str], payload: Optional[dict]) -> None:
        """Forward a shard reply, swapping its tag for the client's."""
        body = dict(payload or {"ok": False, "error": "no reply"})
        # The shard's own wire tag must not leak (or collide with) the
        # client's; strip it before the keyword expansion.
        body.pop("tag", None)
        reply(tag, **body)

    print(
        f"router: {args.shards} shard(s) under {cluster.store_root}",
        file=sys.stderr,
    )
    sys.stderr.flush()
    with cluster:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                command = _json.loads(line)
                op = command["op"]
            except (ValueError, KeyError, TypeError) as exc:
                reply(None, ok=False, error=f"bad command: {exc}")
                continue
            tag = command.get("tag")
            if op == "quit":
                reply(tag, ok=True, op="quit")
                break
            try:
                if op == "open":
                    relay(
                        tag,
                        cluster.open(
                            command["session"], command.get("config", "")
                        ),
                    )
                elif op == "request":
                    try:
                        call = cluster.submit(
                            command["session"],
                            command["intent"],
                            command["target"],
                        )
                    except AdmissionError as exc:
                        reply(
                            tag,
                            ok=False,
                            op="request",
                            outcome="rejected",
                            session=command["session"],
                            retry_after_s=exc.retry_after_s,
                            error=str(exc),
                        )
                        continue
                    relay(tag, call.wait())
                elif op == "close":
                    relay(tag, cluster.close_session(command["session"]))
                elif op == "stats":
                    reply(
                        tag,
                        ok=True,
                        op="stats",
                        shards=cluster.stats(),
                        rejected=cluster.rejected,
                        kills=cluster.kills,
                        restored=cluster.restored_sessions,
                        store_root=cluster.store_root,
                    )
                elif op == "kill-shard":
                    cluster.kill_shard(int(command["shard"]))
                    reply(
                        tag, ok=True, op="kill-shard",
                        shard=int(command["shard"]),
                    )
                elif op == "restart-shard":
                    restored = cluster.restart_shard(int(command["shard"]))
                    reply(
                        tag,
                        ok=True,
                        op="restart-shard",
                        shard=int(command["shard"]),
                        restored=restored,
                    )
                else:
                    reply(tag, ok=False, error=f"unknown op {op!r}")
            except (KeyError, ValueError, TypeError, ClusterError) as exc:
                reply(tag, ok=False, op=op, error=str(exc))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """An in-process request/response loop over a session pool.

    Reads one JSON object per stdin line and answers each with one JSON
    line on stdout.  Operations::

        {"op": "open", "session": "s1", "config": "<IOS text>"}
        {"op": "request", "session": "s1", "target": "ISP_OUT",
         "intent": "...", "deadline_s": 5.0}
        {"op": "close", "session": "s1"}
        {"op": "stats"}
        {"op": "quit"}

    This is the serving layer without a network: the same admission
    control, deadlines, and per-session FIFO that ``clarify loadgen``
    hammers, driveable from a shell pipe or a test harness.

    Commands may carry a ``tag``; the matching reply echoes it, and a
    tagged ``request`` is answered asynchronously (out of order) so the
    worker pool actually pipelines — this is how the shard router keeps
    every shard busy.  With ``--store-dir`` every session's journal
    lives in a :class:`~repro.serve.store.DurableSessionStore`
    (fsynced, crash-safe) and ``--restore`` rebuilds all previously
    open sessions before serving; a re-sent ``request`` whose ``seq``
    already resolved before the crash is answered from the journal
    (marked ``"recovered": true``) instead of running twice.  With
    ``--shards N`` this process becomes the shard *router* instead —
    see ``_serve_router``.

    With ``--metrics-port`` (or ``CLARIFY_METRICS_PORT``) a live
    Prometheus ``/metrics`` + ``/healthz`` endpoint is served on
    loopback and every request produces one wide event; ``--event-log``
    (or ``CLARIFY_EVENT_LOG``) appends those events as JSONL for
    ``clarify tail``.
    """
    import json as _json
    import os
    import threading

    from repro import obs
    from repro.obs import telemetry as tele
    from repro.serve import ClarifyService, ServeRequest, SessionManager
    from repro.serve.loadgen import build_llm_stack
    from repro.serve.service import AdmissionError, ServeResponse
    from repro.serve.store import DurableSessionStore

    if args.shards and args.shards > 1:
        return _serve_router(args)

    out = sys.stdout
    out_lock = threading.Lock()
    metrics_port = args.metrics_port
    if metrics_port is None and os.environ.get("CLARIFY_METRICS_PORT"):
        metrics_port = int(os.environ["CLARIFY_METRICS_PORT"])
    event_log = args.event_log or os.environ.get("CLARIFY_EVENT_LOG") or None
    telemetry_on = metrics_port is not None or event_log is not None

    stack = build_llm_stack(
        backend=args.backend,
        cache_dir=args.cache_dir,
        batch_window_s=args.batch_window,
    )
    store = DurableSessionStore(args.store_dir) if args.store_dir else None
    manager = SessionManager(
        llm=stack.client,
        max_attempts=args.max_attempts,
        journal_dir=args.journal_dir,
        session_store=store,
    )
    restored_ids: List[str] = []
    if args.restore:
        if store is None:
            print("error: --restore requires --store-dir", file=sys.stderr)
            return 1
        restored_ids = manager.restore_all()
        print(
            f"restored {len(restored_ids)} session(s) from {args.store_dir}",
            file=sys.stderr,
        )
        sys.stderr.flush()

    def reply(tag: Optional[str] = None, **payload) -> None:
        if tag is not None:
            payload["tag"] = tag
        with out_lock:
            out.write(_json.dumps(payload, sort_keys=True) + "\n")
            out.flush()

    def send_response(
        tag: Optional[str], response: ServeResponse, recovered: bool = False
    ) -> None:
        payload = response.to_dict()
        if recovered:
            payload["recovered"] = True
        reply(tag, ok=response.ok, op="request", **payload)

    recorder = None
    hub = None
    server = None
    exit_stack = contextlib.ExitStack()
    if telemetry_on:
        # Spans stay off: the tap times phases itself, and span trees
        # grow without bound under a long-lived server.
        recorder = obs.Recorder(capture_spans=False)
        exit_stack.enter_context(obs.recording(recorder))
        hub = tele.install_hub(tele.TelemetryHub(sink=event_log))
        exit_stack.callback(hub.close)
        exit_stack.callback(tele.uninstall_hub)
        if metrics_port is not None:
            server = exit_stack.enter_context(
                tele.MetricsServer(port=metrics_port, recorder_fn=lambda: recorder)
            )
            print(
                f"telemetry: /metrics on 127.0.0.1:{server.port}",
                file=sys.stderr,
            )
            sys.stderr.flush()

    with exit_stack, ClarifyService(
        manager,
        workers=args.workers,
        queue_limit=args.queue_limit,
        high_water=args.high_water,
    ) as service:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                command = _json.loads(line)
                op = command["op"]
            except (ValueError, KeyError, TypeError) as exc:
                reply(None, ok=False, error=f"bad command: {exc}")
                continue
            tag = command.get("tag")
            if op == "quit":
                reply(tag, ok=True, op="quit")
                break
            try:
                if op == "open":
                    existing = (
                        manager.get(command["session"])
                        if command.get("idempotent")
                        else None
                    )
                    if existing is not None:
                        # A router re-send after a restore: the session
                        # is already live (rebuilt from its journal).
                        reply(
                            tag,
                            ok=True,
                            op="open",
                            session=existing.session_id,
                            config_sha256=existing.config_sha256(),
                            recovered=True,
                        )
                        continue
                    managed = manager.open(
                        command["session"], command.get("config", "")
                    )
                    reply(
                        tag,
                        ok=True,
                        op="open",
                        session=managed.session_id,
                        config_sha256=managed.config_sha256(),
                    )
                elif op == "request":
                    seq = command.get("seq")
                    if seq is not None:
                        handle = manager.get(command["session"])
                        replayed = (
                            handle.replayed_response(int(seq))
                            if handle is not None
                            else None
                        )
                        if replayed is not None:
                            # Resolved before the crash; answer from the
                            # journal instead of running a second time.
                            assert isinstance(replayed, ServeResponse)
                            send_response(tag, replayed, recovered=True)
                            continue
                    request = ServeRequest(
                        session=command["session"],
                        intent=command["intent"],
                        target=command["target"],
                        deadline_s=command.get("deadline_s", args.deadline),
                        request_id=command.get("request_id"),
                        trace_id=command.get("trace_id"),
                    )
                    if tag is None:
                        send_response(None, service.call(request))
                        continue
                    # Tagged requests pipeline: submit now, answer from a
                    # waiter thread when the pool resolves the ticket, and
                    # keep reading stdin meanwhile.
                    try:
                        ticket = service.submit(request)
                    except AdmissionError as exc:
                        reply(
                            tag,
                            ok=False,
                            op="request",
                            outcome="rejected",
                            session=request.session,
                            retry_after_s=exc.retry_after_s,
                            error=str(exc),
                        )
                        continue
                    threading.Thread(
                        target=lambda t=ticket, g=tag: send_response(
                            g, t.wait()
                        ),
                        name=f"serve-reply-{tag}",
                        daemon=True,
                    ).start()
                elif op == "close":
                    reply(
                        tag,
                        ok=manager.close(command["session"]),
                        op="close",
                        session=command["session"],
                    )
                elif op == "stats":
                    stats_payload = dict(
                        sessions=len(manager),
                        depth=service.depth(),
                        rejected=service.rejected,
                        restored=len(restored_ids),
                        backend=stack.backend,
                        upstream_llm_calls=stack.upstream_calls,
                        cache=(
                            stack.cached.stats()
                            if stack.cached is not None
                            else None
                        ),
                    )
                    if store is not None:
                        stats_payload["store_dir"] = args.store_dir
                    if telemetry_on:
                        stats_payload["telemetry"] = {
                            "metrics_port": (
                                server.port if server is not None else None
                            ),
                            "event_log": event_log,
                            "wide_events": hub.finished if hub else 0,
                            "completed": manager.completed_counts(),
                        }
                    reply(tag, ok=True, op="stats", **stats_payload)
                else:
                    reply(tag, ok=False, error=f"unknown op {op!r}")
            except (KeyError, ValueError, TypeError) as exc:
                reply(tag, ok=False, op=op, error=str(exc))
    if store is None:
        manager.close_all()
    # With a store, sessions outlive a clean shutdown: an explicit
    # "close" op is the only thing that tombstones them, and journals
    # are fsynced per event, so there is nothing to flush here.
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    """Follow a wide-event request log with rolling latency/error stats.

    Prints one line per wide event (outcome, latency, trace id) plus a
    rolling-window summary every ``--every`` events.  With ``--follow``
    the log is tailed live until ``--idle-timeout`` seconds pass with no
    new events.  Exit status: 0 normally, 1 when the log is unreadable.
    """
    from repro.obs import telemetry as tele

    stats = tele.RollingStats(window=args.window)
    try:
        if args.follow:
            events = tele.follow_events(
                args.event_log, idle_timeout_s=args.idle_timeout
            )
        else:
            events = tele.iter_events(args.event_log)
        seen = 0
        for event in events:
            stats.add(event)
            seen += 1
            timings = event.get("timings", {})
            latency = float(timings.get("latency_s", 0.0))
            print(
                f"{event.get('request_id', '?'):<18} "
                f"{event.get('outcome', '?'):<18} "
                f"{latency * 1000:8.1f}ms  trace={event.get('trace_id', '?')}"
            )
            if args.every and seen % args.every == 0:
                summary = stats.summary()
                print(
                    f"-- last {summary['events']}/{summary['window']}: "
                    f"p50 {summary['p50_s'] * 1000:.1f}ms  "
                    f"p95 {summary['p95_s'] * 1000:.1f}ms  "
                    f"error-rate {summary['error_rate']:.3f}"
                )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    summary = stats.summary()
    print(
        f"tail: {summary['events']} event(s) in window "
        f"(p50 {summary['p50_s'] * 1000:.1f}ms  "
        f"p95 {summary['p95_s'] * 1000:.1f}ms  "
        f"error-rate {summary['error_rate']:.3f})"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Run a seeded load campaign against the serving layer.

    Exit status: 0 clean; 1 when any ticket never resolved, any request
    ended in ``internal-error``, or the ``--check-serial-identity``
    differential found a serial/pooled divergence.
    """
    import json as _json
    import os
    import tempfile

    from repro import obs
    from repro.obs import slo as slo_mod
    from repro.serve import (
        check_cache_effectiveness,
        check_serial_identity,
        check_telemetry_overhead,
        run_loadgen,
    )

    slo_config = None
    if args.slo:
        try:
            slo_config = slo_mod.load_config(args.slo)
        except (OSError, slo_mod.SLOConfigError) as exc:
            print(f"error: cannot load SLO config: {exc}", file=sys.stderr)
            return 1

    kwargs = dict(
        fault_rate=args.fault_rate,
        deadline_s=args.deadline,
        queue_limit=args.queue_limit,
        high_water=args.high_water,
        max_attempts=args.max_attempts,
        backend=args.backend,
        batch_window_s=args.batch_window,
        netwide=args.netwide,
        telemetry=not args.no_telemetry,
        event_log=args.event_log,
        slo=slo_config,
    )
    failures: List[str] = []
    serial = None
    effectiveness = None
    overhead = None
    shard_identity = None
    if args.check_shard_identity:
        from repro.serve.shard import check_shard_identity

        if args.fault_rate > 0.0 or args.deadline is not None or args.netwide:
            print(
                "error: --check-shard-identity requires a fault-free, "
                "deadline-free, gate-free campaign (shard processes run "
                "the plain serving stack, so the in-process legs must "
                "too)",
                file=sys.stderr,
            )
            return 1
        try:
            shard_identity = check_shard_identity(
                args.sessions,
                args.requests_per_session,
                workers=args.workers,
                seed=args.seed,
                shards=args.shards,
                store_root=args.store_dir,
                max_attempts=args.max_attempts,
                backend=args.backend,
                telemetry=False,
            )
        except AssertionError as exc:
            print(f"SHARD IDENTITY FAILED: {exc}", file=sys.stderr)
            return 1
    if args.check_telemetry_overhead:
        if args.fault_rate > 0.0 or args.deadline is not None:
            print(
                "error: --check-telemetry-overhead requires a fault-free, "
                "deadline-free campaign (outcomes must be identical across "
                "the telemetry-off and telemetry-on runs)",
                file=sys.stderr,
            )
            return 1
        overhead_kwargs = {
            k: v
            for k, v in kwargs.items()
            if k
            not in ("fault_rate", "deadline_s", "telemetry", "event_log", "slo")
        }
        try:
            overhead = check_telemetry_overhead(
                args.sessions,
                args.requests_per_session,
                workers=args.workers,
                seed=args.seed,
                repeats=args.overhead_repeats,
                bound=args.overhead_bound,
                cache_dir=args.cache_dir,
                **overhead_kwargs,
            )
        except AssertionError as exc:
            print(f"TELEMETRY OVERHEAD FAILED: {exc}", file=sys.stderr)
            return 1
        if not overhead.ok:
            failures.append(
                f"telemetry overhead {overhead.ratio:.3f}x exceeds "
                f"bound {overhead.bound:g}x"
            )
    if args.check_cache_effectiveness:
        if args.fault_rate > 0.0 or args.deadline is not None:
            print(
                "error: --check-cache-effectiveness requires a fault-free, "
                "deadline-free campaign (chaos bypasses the cache and "
                "deadlines are schedule-dependent)",
                file=sys.stderr,
            )
            return 1
        cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="clarify-cache-")
        try:
            effectiveness = check_cache_effectiveness(
                args.sessions,
                args.requests_per_session,
                workers=args.workers,
                seed=args.seed,
                cache_dir=cache_dir,
                **kwargs,
            )
        except AssertionError as exc:
            print(f"CACHE EFFECTIVENESS FAILED: {exc}", file=sys.stderr)
            return 1
    if args.check_serial_identity:
        if args.fault_rate > 0.0 or args.deadline is not None:
            print(
                "error: --check-serial-identity requires a fault-free, "
                "deadline-free campaign (fault placement and deadlines "
                "are schedule-dependent)",
                file=sys.stderr,
            )
            return 1
        try:
            serial, report = check_serial_identity(
                args.sessions,
                args.requests_per_session,
                workers=args.workers,
                seed=args.seed,
                cache_dir=args.cache_dir,
                **kwargs,
            )
        except AssertionError as exc:
            print(f"IDENTITY FAILED: {exc}", file=sys.stderr)
            return 1
    elif effectiveness is not None:
        report = effectiveness.warm
    elif shard_identity is not None:
        report = shard_identity.pooled
    else:
        report = run_loadgen(
            args.sessions,
            args.requests_per_session,
            workers=args.workers,
            seed=args.seed,
            cache_dir=args.cache_dir,
            **kwargs,
        )

    if report.unresolved:
        failures.append(f"{report.unresolved} request(s) never resolved")
    internal = report.outcomes.get("internal-error", 0)
    if internal:
        failures.append(f"{internal} internal-error outcome(s)")

    slo_alerting: List[str] = []
    slo_block = report.telemetry.get("slo") if report.telemetry else None
    if slo_block and slo_block.get("alerting"):
        slo_alerting = list(slo_block["alerting"])
        failures.append(
            "SLO burn-rate alert: " + ", ".join(slo_alerting)
        )

    # schema_version 2 added the meta run-metadata block and the
    # telemetry/slo/overhead sections; "version" kept for old tooling.
    payload = {
        "schema_version": 2,
        "version": 2,
        "meta": obs.run_metadata(),
        "loadgen": report.to_dict(),
    }
    if serial is not None:
        payload["serial"] = serial.to_dict()
        payload["identity"] = serial.fingerprint == report.fingerprint
    if shard_identity is not None:
        payload["shard"] = shard_identity.to_dict()
    if effectiveness is not None:
        payload["cache_effectiveness"] = effectiveness.to_dict()
    if overhead is not None:
        payload["telemetry_overhead"] = overhead.to_dict()
    if args.output:
        directory = os.path.dirname(args.output) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_json.dumps(payload, indent=1, sort_keys=True))
                handle.write("\n")
            os.replace(tmp_path, args.output)
        except BaseException:
            os.unlink(tmp_path)
            raise

    if args.json:
        print(_json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(
            f"loadgen: {report.requests} requests over {report.sessions} "
            f"sessions, {report.workers} workers, seed {report.seed}"
        )
        print(
            f"  wall {report.wall_s:.2f}s  "
            f"throughput {report.throughput_rps:.1f} req/s"
        )
        quant = report.latency_quantiles
        print(
            f"  latency p50 {quant['p50'] * 1000:.1f}ms  "
            f"p95 {quant['p95'] * 1000:.1f}ms  "
            f"p99 {quant['p99'] * 1000:.1f}ms"
        )
        print(f"  outcomes {report.outcomes}")
        print(
            f"  dedup {report.dedup}  injected_faults "
            f"{report.injected_faults}  rejected "
            f"{report.rejected_submissions}"
        )
        if report.netwide:
            print(f"  netwide {report.netwide}")
        if serial is not None:
            print(f"  serial identity OK ({report.fingerprint[:16]}…)")
        if shard_identity is not None:
            chaos = shard_identity.chaos
            print(
                f"  shard identity OK: serial = pooled = "
                f"{chaos.shards}-shard = chaos "
                f"({report.fingerprint[:16]}…); chaos leg restarted "
                f"{chaos.restarts} shard(s), restored "
                f"{chaos.restored_sessions} session(s)"
            )
        if effectiveness is not None:
            eff = effectiveness.to_dict()
            print(
                "  cache effectiveness OK: upstream calls "
                f"{eff['uncached_upstream_calls']} uncached → "
                f"{eff['cold_upstream_calls']} cold → "
                f"{eff['warm_upstream_calls']} warm"
            )
        if report.telemetry.get("enabled"):
            coverage = report.telemetry.get("trace_coverage", {})
            print(
                f"  telemetry: {report.telemetry.get('wide_events', 0)} "
                f"wide events, trace coverage "
                f"{'complete' if coverage.get('complete') else 'INCOMPLETE'}"
            )
            if slo_block is not None:
                verdict = (
                    "alerting: " + ", ".join(slo_alerting)
                    if slo_alerting
                    else "ok"
                )
                print(f"  slo: {verdict}")
        if overhead is not None:
            print(
                f"  telemetry overhead {'OK' if overhead.ok else 'FAILED'}: "
                f"p50 {overhead.p50_off_s * 1000:.1f}ms off → "
                f"{overhead.p50_on_s * 1000:.1f}ms on "
                f"({overhead.ratio:.3f}x, bound {overhead.bound:g}x)"
            )
    for failure in failures:
        print(f"LOADGEN FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="clarify",
        description="LLM-based incremental network configuration synthesis "
        "with intent disambiguation (HotNets '25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_add = sub.add_parser("add", help="run one incremental update")
    p_add.add_argument("intent", help="the English intent for the new stanza")
    p_add.add_argument("--config", help="existing IOS configuration file")
    p_add.add_argument(
        "--target", required=True, help="route-map or ACL to update"
    )
    p_add.add_argument(
        "--answers",
        help="comma-separated scripted answers (1/2) instead of stdin",
    )
    p_add.add_argument(
        "--top-bottom",
        action="store_true",
        help="use the prototype's top/bottom-only disambiguation",
    )
    p_add.add_argument(
        "--diff",
        action="store_true",
        help="print a unified diff of the change instead of the full config",
    )
    p_add.add_argument(
        "--journal",
        metavar="PATH",
        help="record a replayable session journal (JSONL) to PATH",
    )
    p_add.set_defaults(func=cmd_add)

    p_overlaps = sub.add_parser("overlaps", help="run the §3 overlap analysis")
    p_overlaps.add_argument("--config", required=True)
    p_overlaps.add_argument("--verbose", action="store_true")
    p_overlaps.set_defaults(func=cmd_overlaps)

    p_compare = sub.add_parser(
        "compare", help="differential examples between two route-maps"
    )
    p_compare.add_argument("--config-a", required=True)
    p_compare.add_argument("--config-b", required=True)
    p_compare.add_argument("--name", required=True, help="route-map name")
    p_compare.add_argument("--limit", type=int, default=3)
    p_compare.set_defaults(func=cmd_compare)

    p_eval = sub.add_parser("eval", help="run the §5 evaluation (Figure 4)")
    p_eval.add_argument(
        "--from-configs",
        action="store_true",
        help="re-check the policies on a network reassembled from rendered "
        "device configuration files",
    )
    p_eval.add_argument(
        "--journal",
        metavar="PATH",
        help="record a replayable session journal (JSONL) to PATH",
    )
    p_eval.set_defaults(func=cmd_eval)

    p_list = sub.add_parser(
        "list-add",
        help="insert a prefix-list entry with disambiguation (§7 extension)",
    )
    p_list.add_argument("--config", help="existing IOS configuration file")
    p_list.add_argument("--target", required=True, help="prefix-list name")
    p_list.add_argument("--action", choices=("permit", "deny"), required=True)
    p_list.add_argument("--prefix", required=True, help="e.g. 10.1.2.0/24")
    p_list.add_argument("--ge", type=int)
    p_list.add_argument("--le", type=int)
    p_list.add_argument(
        "--answers",
        help="comma-separated scripted answers (1/2) instead of stdin",
    )
    p_list.set_defaults(func=cmd_list_add)

    p_trace = sub.add_parser(
        "trace",
        help="run one instrumented Clarify cycle and print the span tree "
        "plus metric summary (defaults to the §2 walkthrough)",
    )
    p_trace.add_argument(
        "intent",
        nargs="?",
        help="English intent for the new stanza (default: the §2 walkthrough)",
    )
    p_trace.add_argument(
        "--config",
        help="existing IOS configuration file (default: the §2 ISP_OUT sample)",
    )
    p_trace.add_argument(
        "--target",
        default=WALKTHROUGH_TARGET,
        help="route-map or ACL to update (default: %(default)s)",
    )
    p_trace.add_argument(
        "--answers",
        help="comma-separated scripted answers (1/2); default answers 1 "
        "to every question",
    )
    p_trace.add_argument(
        "--top-bottom",
        action="store_true",
        help="use the prototype's top/bottom-only disambiguation",
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="emit the trace snapshot as JSON instead of text",
    )
    p_trace.add_argument(
        "--journal",
        metavar="PATH",
        help="record a replayable session journal (JSONL) to PATH",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_corpus = sub.add_parser(
        "corpus", help="generate a §3 corpus and report overlap statistics"
    )
    p_corpus.add_argument("which", choices=("cloud", "campus"))
    p_corpus.add_argument("--seed", type=int, default=2025)
    p_corpus.add_argument("--scale", type=float, default=1.0)
    p_corpus.set_defaults(func=cmd_corpus)

    p_campaign = sub.add_parser(
        "campaign",
        help="fan a §3 overlap study or the §5 evaluation across a "
        "process pool (deterministic results and counters)",
    )
    p_campaign.add_argument("which", choices=("campus", "cloud", "eval"))
    p_campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: the CPU count)",
    )
    p_campaign.add_argument(
        "--chunks",
        type=int,
        default=None,
        help="chunk count (default: the worker count); fix it to make "
        "the cache.* counters machine-independent",
    )
    p_campaign.add_argument(
        "--serial",
        action="store_true",
        help="force the in-process serial fallback (workers=1)",
    )
    p_campaign.add_argument(
        "--pool",
        choices=("auto", "persistent", "spawn", "serial"),
        default=None,
        help="worker-pool engine: 'persistent' reuses fork-warm workers "
        "across campaigns, 'spawn' builds a fresh pool per campaign, "
        "'serial' runs in process, 'auto' picks per machine (default: "
        "the REPRO_POOL environment variable, else auto)",
    )
    p_campaign.add_argument("--seed", type=int, default=None)
    p_campaign.add_argument("--scale", type=float, default=1.0)
    p_campaign.add_argument(
        "--runs", type=int, default=1, help="eval repetitions (eval only)"
    )
    p_campaign.add_argument(
        "--benchmark",
        action="store_true",
        help="time serial vs parallel and assert identical results",
    )
    p_campaign.set_defaults(func=cmd_campaign)

    p_lint = sub.add_parser(
        "lint",
        help="symbolic static analysis of a configuration or §3 corpus",
    )
    p_lint.add_argument(
        "--config",
        help="IOS configuration file to lint (default: the §2 ISP_OUT sample)",
    )
    p_lint.add_argument(
        "--corpus",
        choices=("campus", "cloud"),
        help="lint a generated §3 corpus instead of a file; campus mode "
        "cross-checks recovered archetype counts against the generator",
    )
    p_lint.add_argument(
        "--seed", type=int, default=2025, help="corpus generator seed"
    )
    p_lint.add_argument(
        "--scale", type=float, default=0.01, help="corpus size scale factor"
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    p_lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "none"),
        default="error",
        help="exit 1 when a diagnostic at or above this severity is found "
        "(default: %(default)s)",
    )
    p_lint.add_argument(
        "--select",
        help="comma-separated diagnostic codes to run (e.g. RM001,AC001)",
    )
    p_lint.add_argument(
        "--no-witness",
        action="store_true",
        help="skip witness extraction (faster on large corpora)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_netlint = sub.add_parser(
        "netlint",
        help="network-wide static analysis: cross-device conflicts, "
        "drift, and reachability contracts with symbolic witnesses",
    )
    p_netlint.add_argument(
        "--devices",
        nargs="+",
        metavar="FILE",
        help="device configuration files forming the network (default: "
        "the seeded demo topology)",
    )
    p_netlint.add_argument(
        "--corpus",
        choices=("campus", "cloud"),
        help="analyze a generated §3 corpus's devices instead of files "
        "(no BGP topology: drift-only analysis)",
    )
    p_netlint.add_argument(
        "--seed", type=int, default=2025, help="corpus generator seed"
    )
    p_netlint.add_argument(
        "--scale", type=float, default=0.01, help="corpus size scale factor"
    )
    p_netlint.add_argument(
        "--device-count",
        type=int,
        default=24,
        help="devices to materialise from the corpus (default: 24)",
    )
    p_netlint.add_argument(
        "--inject-shadow",
        action="store_true",
        help="demo: inject a cross-device ACL shadow into the seeded "
        "topology (NW001)",
    )
    p_netlint.add_argument(
        "--inject-drift",
        action="store_true",
        help="demo: inject same-named ACL drift into the seeded topology "
        "(NW005)",
    )
    p_netlint.add_argument(
        "--inject-route-shadow",
        action="store_true",
        help="demo: inject a route-map chain cancellation into the seeded "
        "topology (NW003 + NW007)",
    )
    p_netlint.add_argument(
        "--contracts",
        metavar="FILE",
        help="reachability contract file ('SRC ~> PREFIX must-reach'); "
        "the literal value 'default' loads the demo topology's contracts",
    )
    p_netlint.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan path analysis across a process pool (default: serial)",
    )
    p_netlint.add_argument(
        "--chunks",
        type=int,
        default=None,
        help="chunk count for the pool (default: calibrated)",
    )
    p_netlint.add_argument(
        "--pool",
        choices=("auto", "persistent", "spawn", "serial"),
        default=None,
        help="worker-pool engine for --workers > 1 (see 'clarify "
        "campaign --pool'; default: the REPRO_POOL environment "
        "variable, else auto)",
    )
    p_netlint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    p_netlint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "none"),
        default="error",
        help="exit 1 when a finding at or above this severity is present "
        "(default: %(default)s)",
    )
    p_netlint.add_argument(
        "--output",
        metavar="PATH",
        help="write the JSON report to PATH (atomic replace)",
    )
    p_netlint.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare the JSON report against a blessed baseline file; "
        "exit 3 on any byte difference",
    )
    p_netlint.add_argument("--title", help="report title override")
    p_netlint.set_defaults(func=cmd_netlint)

    p_replay = sub.add_parser(
        "replay",
        help="re-drive a recorded session journal with zero LLM calls "
        "and verify it reproduces exactly",
    )
    p_replay.add_argument("journal", help="journal file (JSONL) to replay")
    p_replay.add_argument(
        "--divergence",
        action="store_true",
        help="on mismatch, print the first diverging event in full",
    )
    p_replay.add_argument(
        "--json",
        action="store_true",
        help="emit the replay verdict as JSON",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_bench = sub.add_parser(
        "bench-check",
        help="compare a benchmark metric snapshot against the committed "
        "baseline (perf-regression gate)",
    )
    p_bench.add_argument(
        "--baseline",
        default="benchmarks/BASELINE_obs.json",
        help="blessed snapshot to compare against (default: %(default)s)",
    )
    p_bench.add_argument(
        "--current",
        default="benchmarks/BENCH_obs.json",
        help="snapshot from the run under test (default: %(default)s)",
    )
    p_bench.add_argument(
        "--counter-rel",
        type=float,
        default=0.0,
        help="relative tolerance on counter values (default: exact)",
    )
    p_bench.add_argument(
        "--timing-max-ratio",
        type=float,
        default=1.5,
        help="maximum allowed slowdown ratio for span.* timings "
        "(default: %(default)s)",
    )
    p_bench.add_argument(
        "--timing-warn-only",
        action="store_true",
        help="report timing regressions as warnings instead of failures "
        "(for noisy shared runners)",
    )
    p_bench.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: %(default)s)",
    )
    p_bench.add_argument(
        "--verbose",
        action="store_true",
        help="show every compared metric, not just the interesting rows",
    )
    p_bench.add_argument(
        "--slo-report",
        metavar="PATH",
        help="also check the SLO verdict inside a clarify loadgen "
        "--output artifact; any alerting objective fails the gate",
    )
    p_bench.add_argument(
        "--slo-only",
        action="store_true",
        help="with --slo-report, check only the SLO verdict and skip "
        "the snapshot diff",
    )
    p_bench.add_argument(
        "--perf-snapshot",
        metavar="PATH",
        help="also gate on the campaign scaling contract inside a "
        "BENCH_perf.json artifact: fails when parallel_2worker_s "
        "exceeds serial_s by more than --campaign-tolerance, or when "
        "the serial/parallel results were not identical",
    )
    p_bench.add_argument(
        "--campaign-tolerance",
        type=float,
        default=0.10,
        help="allowed relative slack on parallel vs serial campaign time "
        "(default: %(default)s; raise on noisy shared runners)",
    )
    p_bench.add_argument(
        "--perf-only",
        action="store_true",
        help="with --perf-snapshot, check only the scaling contract and "
        "skip the snapshot diff",
    )
    p_bench.set_defaults(func=cmd_bench_check)

    p_serve = sub.add_parser(
        "serve",
        help="serve many Clarify sessions concurrently over a JSONL "
        "stdin/stdout request loop",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="maximum admitted-but-incomplete requests (default: 64)",
    )
    p_serve.add_argument(
        "--high-water",
        type=int,
        default=None,
        help="backlog depth past which submissions are rejected with a "
        "retry-after (default: the queue limit)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request time budget in seconds",
    )
    p_serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="synthesis retry threshold per request (default: 3)",
    )
    p_serve.add_argument(
        "--journal-dir",
        metavar="DIR",
        help="record one replayable journal per session under DIR",
    )
    p_serve.add_argument(
        "--backend",
        default="simulated",
        help="LLM backend spec: 'simulated', 'remote', or a comma-separated "
        "fallback chain like 'remote,simulated' (default: %(default)s)",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="durable response cache directory (memoizes verified-pure "
        "responses across runs)",
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="micro-batch concurrent LLM calls behind a flush window "
        "(default: off)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a live Prometheus /metrics + /healthz endpoint on "
        "127.0.0.1:PORT (0 picks a free port, announced on stderr; "
        "env: CLARIFY_METRICS_PORT)",
    )
    p_serve.add_argument(
        "--event-log",
        metavar="PATH",
        help="append one wide event per request as JSONL to PATH "
        "(env: CLARIFY_EVENT_LOG); follow it with clarify tail",
    )
    p_serve.add_argument(
        "--store-dir",
        metavar="DIR",
        help="durable session store: fsynced per-session journals plus a "
        "manifest under DIR, restorable after a crash",
    )
    p_serve.add_argument(
        "--restore",
        action="store_true",
        help="with --store-dir, rebuild every previously open session "
        "from its journal (deterministic replay) before serving",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run as a router over N shard serve processes placed by a "
        "consistent-hash ring (each shard gets its own store under "
        "--store-dir); adds kill-shard/restart-shard chaos ops",
    )
    p_serve.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads per shard process (default: --workers)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_tail = sub.add_parser(
        "tail",
        help="follow a wide-event request log and print rolling "
        "p50/p95 latency and error rate",
    )
    p_tail.add_argument(
        "event_log",
        help="wide-event JSONL file written by clarify serve --event-log "
        "or clarify loadgen --event-log",
    )
    p_tail.add_argument(
        "--window",
        type=int,
        default=128,
        help="rolling-window size in events (default: %(default)s)",
    )
    p_tail.add_argument(
        "--every",
        type=int,
        default=16,
        metavar="N",
        help="print a rolling summary every N events (0 disables; "
        "default: %(default)s)",
    )
    p_tail.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the log for new events instead of stopping "
        "at end of file",
    )
    p_tail.add_argument(
        "--idle-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="with --follow, stop after this long with no new events "
        "(default: %(default)s)",
    )
    p_tail.set_defaults(func=cmd_tail)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive the serving layer with a deterministic seeded "
        "campus/cloud intent mix and report throughput + latency",
    )
    p_loadgen.add_argument(
        "--sessions", type=int, default=16, help="sessions to open (default: 16)"
    )
    p_loadgen.add_argument(
        "--requests-per-session",
        type=int,
        default=2,
        help="intents per session (default: 2)",
    )
    p_loadgen.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    p_loadgen.add_argument(
        "--seed", type=int, default=2025, help="workload seed (default: 2025)"
    )
    p_loadgen.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="FaultyLLM chaos rate in [0, 1] (default: off)",
    )
    p_loadgen.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request time budget in seconds (default: none)",
    )
    p_loadgen.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="maximum admitted-but-incomplete requests (default: 64)",
    )
    p_loadgen.add_argument(
        "--high-water",
        type=int,
        default=None,
        help="backlog depth past which submissions are rejected "
        "(default: the queue limit)",
    )
    p_loadgen.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="synthesis retry threshold per request (default: 3)",
    )
    p_loadgen.add_argument(
        "--backend",
        default="simulated",
        help="LLM backend spec: 'simulated', 'remote', or a comma-separated "
        "fallback chain like 'remote,simulated' (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="durable response cache directory (memoizes verified-pure "
        "responses across runs)",
    )
    p_loadgen.add_argument(
        "--batch-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="micro-batch concurrent LLM calls behind a flush window "
        "(default: off)",
    )
    p_loadgen.add_argument(
        "--netwide",
        action="store_true",
        help="attach the network-wide advisory gate to every session "
        "(edits embedded onto the demo topology's EDGE router) and "
        "report the netwide.* conflict counters as a quality axis",
    )
    p_loadgen.add_argument(
        "--check-serial-identity",
        action="store_true",
        help="also run the campaign with one worker and fail unless the "
        "pooled run's per-session outcomes match byte for byte",
    )
    p_loadgen.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="shard processes for --check-shard-identity (default: 2)",
    )
    p_loadgen.add_argument(
        "--store-dir",
        metavar="DIR",
        help="root directory for the sharded legs' durable session "
        "stores (default: a fresh temp directory)",
    )
    p_loadgen.add_argument(
        "--check-shard-identity",
        action="store_true",
        help="run the campaign serial, pooled, sharded across --shards "
        "processes, and sharded with one shard SIGKILLed and restored "
        "mid-campaign; fail unless all four outcome fingerprints are "
        "byte-identical",
    )
    p_loadgen.add_argument(
        "--check-cache-effectiveness",
        action="store_true",
        help="run the campaign uncached, cold-cache, and warm-cache and "
        "fail unless outcomes are identical while upstream LLM calls "
        "drop (uses --cache-dir or a fresh temp directory)",
    )
    p_loadgen.add_argument(
        "--no-telemetry",
        action="store_true",
        help="run without the telemetry hub (no wide events, no SLO "
        "evaluation, no trace-coverage check)",
    )
    p_loadgen.add_argument(
        "--event-log",
        metavar="PATH",
        help="append one wide event per request as JSONL to PATH",
    )
    p_loadgen.add_argument(
        "--slo",
        metavar="PATH",
        help="evaluate burn rates against the SLO config at PATH instead "
        "of the built-in default objectives",
    )
    p_loadgen.add_argument(
        "--check-telemetry-overhead",
        action="store_true",
        help="also run interleaved telemetry-off/on campaigns and fail "
        "when the telemetry-on p50 exceeds the off p50 by more than "
        "--overhead-bound (outcomes must stay byte-identical)",
    )
    p_loadgen.add_argument(
        "--overhead-bound",
        type=float,
        default=1.05,
        metavar="RATIO",
        help="maximum allowed telemetry-on/off p50 ratio "
        "(default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--overhead-repeats",
        type=int,
        default=3,
        metavar="N",
        help="off/on campaign pairs to run for the overhead check; the "
        "minimum p50 per mode is compared (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--output",
        metavar="PATH",
        help="write the campaign report as JSON to PATH (atomic replace)",
    )
    p_loadgen.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of the text summary",
    )
    p_loadgen.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
