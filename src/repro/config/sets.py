"""Route-map set clauses (the transforms a permitting stanza applies)."""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.netaddr import Ipv4Address
from repro.route import BgpRoute


class SetClause:
    """Base class for route-map set clauses."""

    __slots__ = ()

    def apply(self, route: BgpRoute) -> BgpRoute:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class SetMetric(SetClause):
    """``set metric <value>`` (MED)."""

    value: int

    def apply(self, route: BgpRoute) -> BgpRoute:
        return route.with_updates(metric=self.value)


@dataclasses.dataclass(frozen=True)
class SetLocalPreference(SetClause):
    """``set local-preference <value>``"""

    value: int

    def apply(self, route: BgpRoute) -> BgpRoute:
        return route.with_updates(local_preference=self.value)


@dataclasses.dataclass(frozen=True)
class SetCommunity(SetClause):
    """``set community <communities...> [additive]``

    Without ``additive`` the route's communities are replaced; with it the
    listed communities are added.
    """

    communities: Tuple[str, ...]
    additive: bool = False

    def apply(self, route: BgpRoute) -> BgpRoute:
        if self.additive:
            merged = frozenset(route.communities) | frozenset(self.communities)
        else:
            merged = frozenset(self.communities)
        return route.with_updates(communities=merged)


@dataclasses.dataclass(frozen=True)
class SetNextHop(SetClause):
    """``set ip next-hop <address>``"""

    address: Ipv4Address

    def apply(self, route: BgpRoute) -> BgpRoute:
        return route.with_updates(next_hop=self.address)


@dataclasses.dataclass(frozen=True)
class SetTag(SetClause):
    """``set tag <value>``"""

    value: int

    def apply(self, route: BgpRoute) -> BgpRoute:
        return route.with_updates(tag=self.value)


@dataclasses.dataclass(frozen=True)
class SetWeight(SetClause):
    """``set weight <value>``"""

    value: int

    def apply(self, route: BgpRoute) -> BgpRoute:
        return route.with_updates(weight=self.value)


@dataclasses.dataclass(frozen=True)
class SetAsPathPrepend(SetClause):
    """``set as-path prepend <asns...>``"""

    asns: Tuple[int, ...]

    def apply(self, route: BgpRoute) -> BgpRoute:
        return route.prepend(self.asns)


__all__ = [
    "SetClause",
    "SetMetric",
    "SetLocalPreference",
    "SetCommunity",
    "SetNextHop",
    "SetTag",
    "SetWeight",
    "SetAsPathPrepend",
]
