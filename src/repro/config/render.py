"""Rendering configuration objects back to Cisco IOS text.

The output uses the exact syntax the paper's examples use, so parsing and
rendering round-trip (the property tests in ``tests/config`` check this).
"""

from __future__ import annotations

from typing import List, Union

from repro.config.acl import Acl, AclRule
from repro.config.lists import (
    AsPathAccessList,
    CommunityList,
    PrefixList,
    PrefixListEntry,
)
from repro.config.matches import (
    MatchAsPath,
    MatchClause,
    MatchCommunity,
    MatchLocalPreference,
    MatchMetric,
    MatchPrefixList,
    MatchTag,
)
from repro.config.routemap import RouteMap
from repro.config.sets import (
    SetAsPathPrepend,
    SetClause,
    SetCommunity,
    SetLocalPreference,
    SetMetric,
    SetNextHop,
    SetTag,
    SetWeight,
)
from repro.config.store import ConfigStore
from repro.netaddr import Ipv4Wildcard


def render_prefix_list(pl: PrefixList) -> str:
    lines = [render_prefix_list_entry(pl.name, e) for e in pl.entries]
    return "\n".join(lines)


def render_prefix_list_entry(name: str, entry: PrefixListEntry) -> str:
    line = f"ip prefix-list {name} seq {entry.seq} {entry.action} {entry.prefix}"
    if entry.ge is not None:
        line += f" ge {entry.ge}"
    if entry.le is not None:
        line += f" le {entry.le}"
    return line


def render_community_list(cl: CommunityList) -> str:
    kind = "expanded" if cl.expanded else "standard"
    lines = []
    for entry in cl.entries:
        body = entry.regex if entry.regex is not None else " ".join(entry.communities)
        lines.append(f"ip community-list {kind} {cl.name} {entry.action} {body}")
    return "\n".join(lines)


def render_as_path_list(al: AsPathAccessList) -> str:
    return "\n".join(
        f"ip as-path access-list {al.name} {e.action} {e.regex}"
        for e in al.entries
    )


def render_match(clause: MatchClause) -> str:
    if isinstance(clause, MatchPrefixList):
        return "match ip address prefix-list " + " ".join(clause.names)
    if isinstance(clause, MatchCommunity):
        return "match community " + " ".join(clause.names)
    if isinstance(clause, MatchAsPath):
        return "match as-path " + " ".join(clause.names)
    if isinstance(clause, MatchLocalPreference):
        return f"match local-preference {clause.value}"
    if isinstance(clause, MatchMetric):
        return f"match metric {clause.value}"
    if isinstance(clause, MatchTag):
        return f"match tag {clause.value}"
    raise TypeError(f"unknown match clause: {clause!r}")


def render_set(clause: SetClause) -> str:
    if isinstance(clause, SetMetric):
        return f"set metric {clause.value}"
    if isinstance(clause, SetLocalPreference):
        return f"set local-preference {clause.value}"
    if isinstance(clause, SetCommunity):
        suffix = " additive" if clause.additive else ""
        return "set community " + " ".join(clause.communities) + suffix
    if isinstance(clause, SetNextHop):
        return f"set ip next-hop {clause.address}"
    if isinstance(clause, SetTag):
        return f"set tag {clause.value}"
    if isinstance(clause, SetWeight):
        return f"set weight {clause.value}"
    if isinstance(clause, SetAsPathPrepend):
        return "set as-path prepend " + " ".join(str(a) for a in clause.asns)
    raise TypeError(f"unknown set clause: {clause!r}")


def render_route_map(rm: RouteMap) -> str:
    lines: List[str] = []
    for stanza in rm.stanzas:
        lines.append(f"route-map {rm.name} {stanza.action} {stanza.seq}")
        for clause in stanza.matches:
            lines.append(" " + render_match(clause))
        for clause in stanza.sets:
            lines.append(" " + render_set(clause))
    return "\n".join(lines)


def _render_endpoint(wc: Ipv4Wildcard) -> str:
    if wc == Ipv4Wildcard.any():
        return "any"
    if wc.wildcard.value == 0:
        return f"host {wc.address}"
    return f"{wc.address} {wc.wildcard}"


def render_acl_rule(rule: AclRule) -> str:
    parts = [str(rule.seq), rule.action, rule.protocol.name, _render_endpoint(rule.src)]
    src_ports = rule.src_ports.render()
    if src_ports:
        parts.append(src_ports)
    parts.append(_render_endpoint(rule.dst))
    dst_ports = rule.dst_ports.render()
    if dst_ports:
        parts.append(dst_ports)
    if rule.established:
        parts.append("established")
    return " ".join(parts)


def render_acl(acl: Acl) -> str:
    lines = [f"ip access-list extended {acl.name}"]
    lines.extend(" " + render_acl_rule(rule) for rule in acl.rules)
    return "\n".join(lines)


Renderable = Union[PrefixList, CommunityList, AsPathAccessList, RouteMap, Acl]


def render_object(obj: Renderable) -> str:
    if isinstance(obj, PrefixList):
        return render_prefix_list(obj)
    if isinstance(obj, CommunityList):
        return render_community_list(obj)
    if isinstance(obj, AsPathAccessList):
        return render_as_path_list(obj)
    if isinstance(obj, RouteMap):
        return render_route_map(obj)
    if isinstance(obj, Acl):
        return render_acl(obj)
    raise TypeError(f"cannot render {obj!r}")


def render_config(store: ConfigStore) -> str:
    """Render a whole store in the order the paper's listings use."""
    blocks: List[str] = []
    for al in store.as_path_lists():
        blocks.append(render_as_path_list(al))
    for cl in store.community_lists():
        blocks.append(render_community_list(cl))
    for pl in store.prefix_lists():
        blocks.append(render_prefix_list(pl))
    for acl in store.acls():
        blocks.append(render_acl(acl))
    for rm in store.route_maps():
        blocks.append(render_route_map(rm))
    return "\n\n".join(block for block in blocks if block)


__all__ = [
    "render_acl",
    "render_acl_rule",
    "render_as_path_list",
    "render_community_list",
    "render_config",
    "render_match",
    "render_object",
    "render_prefix_list",
    "render_route_map",
    "render_set",
]
