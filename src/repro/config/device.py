"""Device-level configuration files.

The paper's pipeline ultimately reads and writes whole router
configurations (Batfish parses "the configurations that could be
parsed", §3.1; the campus corpus is "1421 device configurations").  This
module models the device level of the IOS subset:

* ``hostname``;
* ``interface`` blocks with an address and optional ``ip access-group``
  attachments;
* a ``router bgp`` block with a router-id, ``network`` originations
  (optionally tagged through a route-map), and per-neighbor route-map
  policies — repeated ``route-map ... in/out`` lines build the
  per-neighbor *chain* the cloud study observed (§3.1).

Policy objects (route-maps, ACLs, lists) inside the file are parsed by
the existing statement parser; :func:`parse_device` splices both levels
together, and :func:`render_device` writes a file the parser round-trips.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.config.parser import ConfigParseError, parse_config
from repro.config.render import render_config
from repro.config.store import ConfigStore
from repro.netaddr import Ipv4Address, Ipv4Prefix


@dataclasses.dataclass(frozen=True)
class Interface:
    """One interface: an address plus optional ACL attachments."""

    name: str
    address: Optional[Ipv4Address] = None
    prefix_length: int = 24
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None

    def network(self) -> Optional[Ipv4Prefix]:
        if self.address is None:
            return None
        return Ipv4Prefix.canonical(self.address, self.prefix_length)


@dataclasses.dataclass(frozen=True)
class BgpNeighbor:
    """One BGP neighbor with its route-map chains."""

    address: Ipv4Address
    remote_as: int
    import_chain: Tuple[str, ...] = ()
    export_chain: Tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class NetworkStatement:
    """One ``network`` origination, optionally through a route-map."""

    prefix: Ipv4Prefix
    route_map: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class BgpConfig:
    """The ``router bgp`` block."""

    asn: int
    router_id: Optional[Ipv4Address] = None
    networks: Tuple[NetworkStatement, ...] = ()
    neighbors: Tuple[BgpNeighbor, ...] = ()


@dataclasses.dataclass
class DeviceConfig:
    """One device: hostname, interfaces, BGP, and its policy objects."""

    hostname: str
    interfaces: List[Interface] = dataclasses.field(default_factory=list)
    bgp: Optional[BgpConfig] = None
    store: ConfigStore = dataclasses.field(default_factory=ConfigStore)

    def interface_addresses(self) -> List[Ipv4Address]:
        return [i.address for i in self.interfaces if i.address is not None]

    def validate(self) -> None:
        """Check that every referenced policy object exists."""
        for interface in self.interfaces:
            for acl_name in (interface.acl_in, interface.acl_out):
                if acl_name is not None:
                    self.store.acl(acl_name)
        if self.bgp is not None:
            for statement in self.bgp.networks:
                if statement.route_map is not None:
                    self.store.route_map(statement.route_map)
            for neighbor in self.bgp.neighbors:
                for name in neighbor.import_chain + neighbor.export_chain:
                    self.store.route_map(name)


# ------------------------------------------------------------------ parse


def _mask_to_length(mask: Ipv4Address) -> int:
    value = mask.value
    length = bin(value).count("1")
    expected = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    if value != expected:
        raise ValueError(f"non-contiguous netmask {mask}")
    return length


def parse_device(text: str) -> DeviceConfig:
    """Parse one device configuration file."""
    device_lines: List[Tuple[int, str]] = []
    policy_lines: List[str] = []
    mode: Optional[str] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("!"):
            if not raw.startswith(" "):
                mode = None
            continue
        head = stripped.split()[0]
        if not raw.startswith(" "):
            if head in ("hostname", "interface") or stripped.startswith(
                "router bgp"
            ):
                mode = "device"
                device_lines.append((line_no, stripped))
                continue
            mode = None
        if mode == "device" and raw.startswith(" "):
            device_lines.append((line_no, stripped))
        else:
            policy_lines.append(raw)

    store = parse_config("\n".join(policy_lines))
    device = DeviceConfig(hostname="", store=store)
    _parse_device_blocks(device, device_lines)
    if not device.hostname:
        raise ConfigParseError(0, "", "device file has no hostname")
    device.validate()
    return device


def _parse_device_blocks(
    device: DeviceConfig, lines: List[Tuple[int, str]]
) -> None:
    index = 0
    bgp_asn: Optional[int] = None
    bgp_router_id: Optional[Ipv4Address] = None
    networks: List[NetworkStatement] = []
    neighbors: Dict[str, dict] = {}

    def error(line_no: int, line: str, message: str) -> ConfigParseError:
        return ConfigParseError(line_no, line, message)

    current_interface: Optional[dict] = None
    in_bgp = False

    def flush_interface() -> None:
        nonlocal current_interface
        if current_interface is not None:
            device.interfaces.append(Interface(**current_interface))
            current_interface = None

    for line_no, line in lines:
        words = line.split()
        if words[0] == "hostname":
            if len(words) != 2:
                raise error(line_no, line, "expected 'hostname NAME'")
            device.hostname = words[1]
            flush_interface()
            in_bgp = False
        elif words[0] == "interface":
            flush_interface()
            in_bgp = False
            if len(words) != 2:
                raise error(line_no, line, "expected 'interface NAME'")
            current_interface = {"name": words[1]}
        elif words[0] == "router" and words[1:2] == ["bgp"]:
            flush_interface()
            in_bgp = True
            if len(words) != 3 or not words[2].isdigit():
                raise error(line_no, line, "expected 'router bgp ASN'")
            bgp_asn = int(words[2])
        elif current_interface is not None and words[0] == "ip":
            if words[1] == "address" and len(words) == 4:
                try:
                    address = Ipv4Address.parse(words[2])
                    length = _mask_to_length(Ipv4Address.parse(words[3]))
                except ValueError as exc:
                    raise error(line_no, line, str(exc)) from None
                current_interface["address"] = address
                current_interface["prefix_length"] = length
            elif words[1] == "access-group" and len(words) == 4:
                direction = words[3]
                if direction not in ("in", "out"):
                    raise error(line_no, line, "access-group needs in/out")
                current_interface[f"acl_{direction}"] = words[2]
            else:
                raise error(line_no, line, "unknown interface statement")
        elif in_bgp:
            if words[0] == "bgp" and words[1:2] == ["router-id"]:
                try:
                    bgp_router_id = Ipv4Address.parse(words[2])
                except (IndexError, ValueError) as exc:
                    raise error(line_no, line, str(exc)) from None
            elif words[0] == "network":
                # network A.B.C.D mask M.M.M.M [route-map NAME]
                if len(words) < 4 or words[2] != "mask":
                    raise error(
                        line_no, line, "expected 'network A.B.C.D mask M.M.M.M'"
                    )
                try:
                    address = Ipv4Address.parse(words[1])
                    length = _mask_to_length(Ipv4Address.parse(words[3]))
                    prefix = Ipv4Prefix.canonical(address, length)
                except ValueError as exc:
                    raise error(line_no, line, str(exc)) from None
                route_map = None
                if len(words) == 6 and words[4] == "route-map":
                    route_map = words[5]
                elif len(words) != 4:
                    raise error(line_no, line, "bad network statement")
                networks.append(NetworkStatement(prefix, route_map))
            elif words[0] == "neighbor":
                if len(words) < 4:
                    raise error(line_no, line, "truncated neighbor statement")
                address = words[1]
                entry = neighbors.setdefault(
                    address, {"remote_as": None, "in": [], "out": []}
                )
                if words[2] == "remote-as" and words[3].isdigit():
                    entry["remote_as"] = int(words[3])
                elif words[2] == "route-map" and len(words) == 5:
                    direction = words[4]
                    if direction not in ("in", "out"):
                        raise error(line_no, line, "route-map needs in/out")
                    entry[direction].append(words[3])
                else:
                    raise error(line_no, line, "unknown neighbor statement")
            else:
                raise error(line_no, line, "unknown router bgp statement")
        else:
            raise error(line_no, line, f"unexpected statement {words[0]!r}")
    flush_interface()

    if bgp_asn is not None:
        parsed_neighbors = []
        for address, entry in neighbors.items():
            if entry["remote_as"] is None:
                raise ConfigParseError(
                    0, address, f"neighbor {address} has no remote-as"
                )
            parsed_neighbors.append(
                BgpNeighbor(
                    address=Ipv4Address.parse(address),
                    remote_as=entry["remote_as"],
                    import_chain=tuple(entry["in"]),
                    export_chain=tuple(entry["out"]),
                )
            )
        device.bgp = BgpConfig(
            asn=bgp_asn,
            router_id=bgp_router_id,
            networks=tuple(networks),
            neighbors=tuple(sorted(parsed_neighbors, key=lambda n: n.address)),
        )


# ----------------------------------------------------------------- render


def _length_to_mask(length: int) -> str:
    value = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    return str(Ipv4Address(value))


def render_device(device: DeviceConfig) -> str:
    """Render a device configuration file (round-trips via parse)."""
    blocks: List[str] = [f"hostname {device.hostname}"]
    for interface in device.interfaces:
        lines = [f"interface {interface.name}"]
        if interface.address is not None:
            mask = _length_to_mask(interface.prefix_length)
            lines.append(f" ip address {interface.address} {mask}")
        if interface.acl_in:
            lines.append(f" ip access-group {interface.acl_in} in")
        if interface.acl_out:
            lines.append(f" ip access-group {interface.acl_out} out")
        blocks.append("\n".join(lines))
    policy_text = render_config(device.store)
    if policy_text:
        blocks.append(policy_text)
    if device.bgp is not None:
        lines = [f"router bgp {device.bgp.asn}"]
        if device.bgp.router_id is not None:
            lines.append(f" bgp router-id {device.bgp.router_id}")
        for statement in device.bgp.networks:
            entry = (
                f" network {statement.prefix.network} mask "
                f"{_length_to_mask(statement.prefix.length)}"
            )
            if statement.route_map:
                entry += f" route-map {statement.route_map}"
            lines.append(entry)
        for neighbor in device.bgp.neighbors:
            lines.append(
                f" neighbor {neighbor.address} remote-as {neighbor.remote_as}"
            )
            for name in neighbor.import_chain:
                lines.append(f" neighbor {neighbor.address} route-map {name} in")
            for name in neighbor.export_chain:
                lines.append(f" neighbor {neighbor.address} route-map {name} out")
        blocks.append("\n".join(lines))
    return "\n!\n".join(blocks) + "\n"


__all__ = [
    "BgpConfig",
    "BgpNeighbor",
    "DeviceConfig",
    "Interface",
    "NetworkStatement",
    "parse_device",
    "render_device",
]
