"""Ancillary match lists: prefix-lists, community-lists, AS-path lists.

Each list type carries its concrete matching semantics (the semantics the
BGP simulator and differential-example validation use); the symbolic
analysis in :mod:`repro.analysis` mirrors these definitions.

Semantics notes
---------------
* **Prefix lists** follow IOS rules: an entry ``permit P/len [ge G] [le L]``
  matches a route whose network falls inside ``P/len`` and whose own
  length is ``len`` exactly (no ge/le), in ``[G, 32]`` (ge only), in
  ``[len, L]`` (le only), or in ``[G, L]`` (both).  First matching entry
  wins; a list with no matching entry denies.
* **Expanded community lists** hold regexes.  We adopt the
  has-community interpretation (as Batfish does for patterns like
  ``_300:3_``): an entry matches if *any* community on the route matches
  its regex.
* **Standard community lists** hold sets of literal communities; an entry
  matches if the route carries *all* of them.
* **AS-path access lists** hold regexes matched against the flattened
  AS path rendered as space-separated ASNs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Tuple

from repro.netaddr import Ipv4Prefix
from repro.regexlib.cisco import as_path_matches, community_matches
from repro.route import BgpRoute

PERMIT = "permit"
DENY = "deny"


def _check_action(action: str) -> None:
    if action not in (PERMIT, DENY):
        raise ValueError(f"action must be 'permit' or 'deny', got {action!r}")


# --------------------------------------------------------------- prefix lists


@dataclasses.dataclass(frozen=True)
class PrefixListEntry:
    """One ``ip prefix-list`` entry."""

    seq: int
    action: str
    prefix: Ipv4Prefix
    ge: Optional[int] = None
    le: Optional[int] = None

    def __post_init__(self) -> None:
        _check_action(self.action)
        if self.ge is not None and not self.prefix.length <= self.ge <= 32:
            raise ValueError(
                f"ge {self.ge} out of range for {self.prefix} (seq {self.seq})"
            )
        if self.le is not None and not self.prefix.length <= self.le <= 32:
            raise ValueError(
                f"le {self.le} out of range for {self.prefix} (seq {self.seq})"
            )
        if self.ge is not None and self.le is not None and self.ge > self.le:
            raise ValueError(f"ge {self.ge} > le {self.le} (seq {self.seq})")

    def length_bounds(self) -> Tuple[int, int]:
        """The inclusive [lo, hi] route-length range this entry matches."""
        if self.ge is None and self.le is None:
            return (self.prefix.length, self.prefix.length)
        if self.ge is not None and self.le is not None:
            return (self.ge, self.le)
        if self.ge is not None:
            return (self.ge, 32)
        return (self.prefix.length, self.le)

    def matches(self, network: Ipv4Prefix) -> bool:
        lo, hi = self.length_bounds()
        return self.prefix.contains_prefix(network) and lo <= network.length <= hi


@dataclasses.dataclass(frozen=True)
class PrefixList:
    """An ``ip prefix-list``: ordered entries, first match wins."""

    name: str
    entries: Tuple[PrefixListEntry, ...]

    def permits(self, network: Ipv4Prefix) -> bool:
        for entry in self.entries:
            if entry.matches(network):
                return entry.action == PERMIT
        return False

    def with_entries(self, entries: Iterable[PrefixListEntry]) -> "PrefixList":
        return PrefixList(self.name, tuple(entries))


# ------------------------------------------------------------ community lists


@dataclasses.dataclass(frozen=True)
class CommunityListEntry:
    """One community-list entry.

    For expanded lists ``regex`` is set; for standard lists
    ``communities`` holds the literal communities that must all be
    present.
    """

    action: str
    regex: Optional[str] = None
    communities: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_action(self.action)
        if (self.regex is None) == (not self.communities):
            raise ValueError(
                "exactly one of regex / communities must be provided"
            )

    def matches(self, route_communities: Iterable[str]) -> bool:
        if self.regex is not None:
            return any(
                community_matches(self.regex, c) for c in route_communities
            )
        held = set(route_communities)
        return all(c in held for c in self.communities)


@dataclasses.dataclass(frozen=True)
class CommunityList:
    """An ``ip community-list`` (standard or expanded)."""

    name: str
    entries: Tuple[CommunityListEntry, ...]
    expanded: bool = True

    def permits(self, route: BgpRoute) -> bool:
        for entry in self.entries:
            if entry.matches(route.communities):
                return entry.action == PERMIT
        return False


# -------------------------------------------------------------- as-path lists


@dataclasses.dataclass(frozen=True)
class AsPathEntry:
    """One ``ip as-path access-list`` entry."""

    action: str
    regex: str

    def __post_init__(self) -> None:
        _check_action(self.action)

    def matches(self, route: BgpRoute) -> bool:
        return as_path_matches(self.regex, route.asns())


@dataclasses.dataclass(frozen=True)
class AsPathAccessList:
    """An ``ip as-path access-list``: ordered regexes, first match wins."""

    name: str
    entries: Tuple[AsPathEntry, ...]

    def permits(self, route: BgpRoute) -> bool:
        for entry in self.entries:
            if entry.matches(route):
                return entry.action == PERMIT
        return False


__all__ = [
    "PERMIT",
    "DENY",
    "AsPathAccessList",
    "AsPathEntry",
    "CommunityList",
    "CommunityListEntry",
    "PrefixList",
    "PrefixListEntry",
]
