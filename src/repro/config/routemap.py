"""Route-maps: ordered stanzas with match and set clauses."""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Tuple

from repro.config.lists import DENY, PERMIT
from repro.config.matches import MatchClause
from repro.config.sets import SetClause

#: IOS convention: stanza sequence numbers step by 10 so insertions fit.
SEQ_STEP = 10


@dataclasses.dataclass(frozen=True)
class RouteMapStanza:
    """One ``route-map <name> <action> <seq>`` stanza."""

    seq: int
    action: str
    matches: Tuple[MatchClause, ...] = ()
    sets: Tuple[SetClause, ...] = ()

    def __post_init__(self) -> None:
        if self.action not in (PERMIT, DENY):
            raise ValueError(
                f"action must be 'permit' or 'deny', got {self.action!r}"
            )

    def with_seq(self, seq: int) -> "RouteMapStanza":
        return dataclasses.replace(self, seq=seq)


@dataclasses.dataclass(frozen=True)
class RouteMap:
    """A named, ordered sequence of stanzas.

    Stanzas are evaluated in order; a route is handled by the first stanza
    whose match clauses all succeed.  Routes matching no stanza are denied
    (the implicit termination rule the paper describes).
    """

    name: str
    stanzas: Tuple[RouteMapStanza, ...] = ()

    def __post_init__(self) -> None:
        seqs = [s.seq for s in self.stanzas]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            raise ValueError(
                f"route-map {self.name}: stanza sequence numbers must be "
                f"strictly increasing, got {seqs}"
            )

    def stanza_at(self, seq: int) -> RouteMapStanza:
        for stanza in self.stanzas:
            if stanza.seq == seq:
                return stanza
        raise KeyError(f"route-map {self.name} has no stanza {seq}")

    def index_of(self, seq: int) -> int:
        for idx, stanza in enumerate(self.stanzas):
            if stanza.seq == seq:
                return idx
        raise KeyError(f"route-map {self.name} has no stanza {seq}")

    def insert(self, stanza: RouteMapStanza, position: int) -> "RouteMap":
        """A new route-map with ``stanza`` inserted before index ``position``.

        Sequence numbers are renumbered in steps of 10, preserving order —
        the same normalisation a human operator performs when a stanza no
        longer fits between existing numbers.
        """
        if not 0 <= position <= len(self.stanzas):
            raise ValueError(
                f"insertion position {position} out of range "
                f"(0..{len(self.stanzas)})"
            )
        combined: List[RouteMapStanza] = list(self.stanzas)
        combined.insert(position, stanza)
        renumbered = tuple(
            s.with_seq(SEQ_STEP * (idx + 1)) for idx, s in enumerate(combined)
        )
        return RouteMap(self.name, renumbered)

    def append(self, stanza: RouteMapStanza) -> "RouteMap":
        return self.insert(stanza, len(self.stanzas))

    def prepend(self, stanza: RouteMapStanza) -> "RouteMap":
        return self.insert(stanza, 0)

    def with_name(self, name: str) -> "RouteMap":
        return dataclasses.replace(self, name=name)

    @classmethod
    def from_stanzas(
        cls, name: str, stanzas: Iterable[RouteMapStanza]
    ) -> "RouteMap":
        return cls(name, tuple(stanzas))

    def __len__(self) -> int:
        return len(self.stanzas)


__all__ = ["RouteMap", "RouteMapStanza", "SEQ_STEP"]
