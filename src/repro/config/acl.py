"""Extended IP access-control lists."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.netaddr import IntervalSet, Ipv4Wildcard
from repro.route.packet import PORT_PROTOCOLS, PROTOCOL_NUMBERS, Packet

PERMIT = "permit"
DENY = "deny"

FULL_PORT_RANGE = IntervalSet.closed(0, 65535)
FULL_PROTOCOL_RANGE = IntervalSet.closed(0, 255)


@dataclasses.dataclass(frozen=True)
class PortSpec:
    """A port match: ``eq``, ``neq``, ``lt``, ``gt``, ``range``, or any.

    Stored canonically as an :class:`IntervalSet`, with the original
    operator retained for faithful rendering.
    """

    op: str = "any"
    values: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in ("any", "eq", "neq", "lt", "gt", "range"):
            raise ValueError(f"unknown port operator {self.op!r}")
        for value in self.values:
            if not 0 <= value <= 65535:
                raise ValueError(f"port out of range: {value}")
        if self.op == "range" and len(self.values) != 2:
            raise ValueError("range takes exactly two ports")
        if self.op in ("lt", "gt") and len(self.values) != 1:
            raise ValueError(f"{self.op} takes exactly one port")
        if self.op in ("eq", "neq") and not self.values:
            raise ValueError(f"{self.op} needs at least one port")
        if self.op == "range" and self.values[0] > self.values[1]:
            raise ValueError(f"empty port range {self.values}")

    def to_intervals(self) -> IntervalSet:
        if self.op == "any":
            return FULL_PORT_RANGE
        if self.op == "eq":
            return IntervalSet.of(*self.values)
        if self.op == "neq":
            return IntervalSet.of(*self.values).complement(FULL_PORT_RANGE)
        if self.op == "lt":
            return IntervalSet.closed(0, self.values[0] - 1) if self.values[0] else IntervalSet.empty()
        if self.op == "gt":
            return IntervalSet.closed(self.values[0] + 1, 65535) if self.values[0] < 65535 else IntervalSet.empty()
        return IntervalSet.closed(self.values[0], self.values[1])

    def matches(self, port: int) -> bool:
        return self.to_intervals().contains(port)

    def render(self) -> str:
        if self.op == "any":
            return ""
        return f"{self.op} " + " ".join(str(v) for v in self.values)


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """The protocol field of an ACL rule: ``ip`` (any) or one protocol."""

    name: str = "ip"

    def __post_init__(self) -> None:
        if self.name != "ip" and self.name not in PROTOCOL_NUMBERS:
            if not self.name.isdigit() or not 0 <= int(self.name) <= 255:
                raise ValueError(f"unknown protocol {self.name!r}")

    def to_intervals(self) -> IntervalSet:
        if self.name == "ip":
            return FULL_PROTOCOL_RANGE
        return IntervalSet.single(self.number())

    def number(self) -> Optional[int]:
        if self.name == "ip":
            return None
        if self.name.isdigit():
            return int(self.name)
        return PROTOCOL_NUMBERS[self.name]

    def matches(self, protocol: int) -> bool:
        return self.name == "ip" or self.number() == protocol

    def carries_ports(self) -> bool:
        number = self.number()
        return number in PORT_PROTOCOLS if number is not None else False


@dataclasses.dataclass(frozen=True)
class AclRule:
    """One extended-ACL rule."""

    seq: int
    action: str
    protocol: ProtocolSpec
    src: Ipv4Wildcard
    dst: Ipv4Wildcard
    src_ports: PortSpec = PortSpec()
    dst_ports: PortSpec = PortSpec()
    established: bool = False

    def __post_init__(self) -> None:
        if self.action not in (PERMIT, DENY):
            raise ValueError(
                f"action must be 'permit' or 'deny', got {self.action!r}"
            )
        if not self.protocol.carries_ports():
            for spec, what in (
                (self.src_ports, "source"),
                (self.dst_ports, "destination"),
            ):
                if spec.op != "any":
                    raise ValueError(
                        f"{what} ports given for portless protocol "
                        f"{self.protocol.name} (seq {self.seq})"
                    )
        if self.established and self.protocol.number() != PROTOCOL_NUMBERS["tcp"]:
            raise ValueError(f"'established' requires tcp (seq {self.seq})")

    def matches(self, packet: Packet) -> bool:
        if not self.protocol.matches(packet.protocol):
            return False
        if not self.src.matches(packet.src_ip) or not self.dst.matches(packet.dst_ip):
            return False
        if self.protocol.carries_ports() and packet.has_ports():
            if not self.src_ports.matches(packet.src_port):
                return False
            if not self.dst_ports.matches(packet.dst_port):
                return False
        if self.established and not packet.tcp_established:
            return False
        return True

    def with_seq(self, seq: int) -> "AclRule":
        return dataclasses.replace(self, seq=seq)


@dataclasses.dataclass(frozen=True)
class Acl:
    """A named extended ACL; first matching rule wins, implicit deny."""

    name: str
    rules: Tuple[AclRule, ...] = ()

    def __post_init__(self) -> None:
        seqs = [r.seq for r in self.rules]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            raise ValueError(
                f"ACL {self.name}: rule sequence numbers must be strictly "
                f"increasing, got {seqs}"
            )

    def permits(self, packet: Packet) -> bool:
        for rule in self.rules:
            if rule.matches(packet):
                return rule.action == PERMIT
        return False

    def first_match(self, packet: Packet) -> Optional[AclRule]:
        for rule in self.rules:
            if rule.matches(packet):
                return rule
        return None

    def insert(self, rule: AclRule, position: int) -> "Acl":
        """A new ACL with ``rule`` inserted before index ``position``."""
        if not 0 <= position <= len(self.rules):
            raise ValueError(
                f"insertion position {position} out of range "
                f"(0..{len(self.rules)})"
            )
        combined: List[AclRule] = list(self.rules)
        combined.insert(position, rule)
        renumbered = tuple(
            r.with_seq(10 * (idx + 1)) for idx, r in enumerate(combined)
        )
        return Acl(self.name, renumbered)

    def __len__(self) -> int:
        return len(self.rules)


__all__ = [
    "PERMIT",
    "DENY",
    "Acl",
    "AclRule",
    "PortSpec",
    "ProtocolSpec",
    "FULL_PORT_RANGE",
    "FULL_PROTOCOL_RANGE",
]
