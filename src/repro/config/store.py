"""The configuration store: every named object on one device.

Route-maps reference prefix/community/AS-path lists by name, so analysis
and evaluation always operate on a (route-map, store) or (ACL, store)
pair.  The store is an ordinary mutable container with loud failures on
dangling references and duplicate definitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.config.acl import Acl
from repro.config.lists import AsPathAccessList, CommunityList, PrefixList
from repro.config.routemap import RouteMap


class ConfigStore:
    """All named configuration objects of one device."""

    def __init__(self) -> None:
        self._prefix_lists: Dict[str, PrefixList] = {}
        self._community_lists: Dict[str, CommunityList] = {}
        self._as_path_lists: Dict[str, AsPathAccessList] = {}
        self._route_maps: Dict[str, RouteMap] = {}
        self._acls: Dict[str, Acl] = {}

    # ------------------------------------------------------------- lookups

    def prefix_list(self, name: str) -> PrefixList:
        try:
            return self._prefix_lists[name]
        except KeyError:
            raise KeyError(f"undefined prefix-list {name!r}") from None

    def community_list(self, name: str) -> CommunityList:
        try:
            return self._community_lists[name]
        except KeyError:
            raise KeyError(f"undefined community-list {name!r}") from None

    def as_path_list(self, name: str) -> AsPathAccessList:
        try:
            return self._as_path_lists[name]
        except KeyError:
            raise KeyError(f"undefined as-path access-list {name!r}") from None

    def route_map(self, name: str) -> RouteMap:
        try:
            return self._route_maps[name]
        except KeyError:
            raise KeyError(f"undefined route-map {name!r}") from None

    def acl(self, name: str) -> Acl:
        try:
            return self._acls[name]
        except KeyError:
            raise KeyError(f"undefined access-list {name!r}") from None

    def has_prefix_list(self, name: str) -> bool:
        return name in self._prefix_lists

    def has_community_list(self, name: str) -> bool:
        return name in self._community_lists

    def has_as_path_list(self, name: str) -> bool:
        return name in self._as_path_lists

    def has_route_map(self, name: str) -> bool:
        return name in self._route_maps

    def has_acl(self, name: str) -> bool:
        return name in self._acls

    def list_names(self) -> List[str]:
        """Every ancillary-list name in use (for collision avoidance)."""
        return (
            list(self._prefix_lists)
            + list(self._community_lists)
            + list(self._as_path_lists)
        )

    # ----------------------------------------------------------- iteration

    def prefix_lists(self) -> Iterable[PrefixList]:
        return self._prefix_lists.values()

    def community_lists(self) -> Iterable[CommunityList]:
        return self._community_lists.values()

    def as_path_lists(self) -> Iterable[AsPathAccessList]:
        return self._as_path_lists.values()

    def route_maps(self) -> Iterable[RouteMap]:
        return self._route_maps.values()

    def acls(self) -> Iterable[Acl]:
        return self._acls.values()

    # ------------------------------------------------------------- updates

    def add_prefix_list(self, obj: PrefixList, replace: bool = False) -> None:
        self._add(self._prefix_lists, obj.name, obj, "prefix-list", replace)

    def add_community_list(self, obj: CommunityList, replace: bool = False) -> None:
        self._add(self._community_lists, obj.name, obj, "community-list", replace)

    def add_as_path_list(
        self, obj: AsPathAccessList, replace: bool = False
    ) -> None:
        self._add(self._as_path_lists, obj.name, obj, "as-path list", replace)

    def add_route_map(self, obj: RouteMap, replace: bool = False) -> None:
        self._add(self._route_maps, obj.name, obj, "route-map", replace)

    def add_acl(self, obj: Acl, replace: bool = False) -> None:
        self._add(self._acls, obj.name, obj, "access-list", replace)

    @staticmethod
    def _add(table: Dict, name: str, obj, kind: str, replace: bool) -> None:
        if not replace and name in table:
            raise ValueError(f"duplicate {kind} {name!r}")
        table[name] = obj

    # -------------------------------------------------------------- merging

    def merged_with(self, other: "ConfigStore") -> "ConfigStore":
        """A new store containing both stores' objects.

        Name collisions raise; callers resolve collisions first via
        :func:`repro.config.names.rename_snippet_lists`.
        """
        merged = ConfigStore()
        for source in (self, other):
            for pl in source.prefix_lists():
                merged.add_prefix_list(pl)
            for cl in source.community_lists():
                merged.add_community_list(cl)
            for al in source.as_path_lists():
                merged.add_as_path_list(al)
            for rm in source.route_maps():
                merged.add_route_map(rm)
            for acl in source.acls():
                merged.add_acl(acl)
        return merged

    def copy(self) -> "ConfigStore":
        clone = ConfigStore()
        clone._prefix_lists = dict(self._prefix_lists)
        clone._community_lists = dict(self._community_lists)
        clone._as_path_lists = dict(self._as_path_lists)
        clone._route_maps = dict(self._route_maps)
        clone._acls = dict(self._acls)
        return clone


def copy_route_map_closure(
    source: "ConfigStore", target: "ConfigStore", route_map: RouteMap
) -> None:
    """Copy ``route_map`` and every list it references into ``target``.

    Lists already present in ``target`` (by name) are assumed identical
    (the caller distributes one corpus across devices).
    """
    from repro.config.matches import (
        MatchAsPath,
        MatchCommunity,
        MatchPrefixList,
    )

    for stanza in route_map.stanzas:
        for clause in stanza.matches:
            if isinstance(clause, MatchPrefixList):
                for name in clause.names:
                    if not target.has_prefix_list(name):
                        target.add_prefix_list(source.prefix_list(name))
            elif isinstance(clause, MatchCommunity):
                for name in clause.names:
                    if not target.has_community_list(name):
                        target.add_community_list(source.community_list(name))
            elif isinstance(clause, MatchAsPath):
                for name in clause.names:
                    if not target.has_as_path_list(name):
                        target.add_as_path_list(source.as_path_list(name))
    target.add_route_map(route_map)


__all__ = ["ConfigStore", "copy_route_map_closure"]
