"""The Cisco IOS configuration model.

This package models the configuration constructs the paper's pipeline
manipulates: route-maps with match/set clauses, extended ACLs, and the
ancillary lists route-maps reference (prefix-lists, community-lists,
AS-path access-lists).  It includes a parser for the IOS subset used in
the paper's examples and a renderer back to IOS text, plus the
name-collision machinery used when an LLM-generated snippet is inserted
into an existing configuration (Fig. 2: "data structure names are
automatically updated by the tool during insertion").
"""

from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.config.lists import (
    AsPathAccessList,
    AsPathEntry,
    CommunityList,
    CommunityListEntry,
    PrefixList,
    PrefixListEntry,
)
from repro.config.matches import (
    MatchAsPath,
    MatchClause,
    MatchCommunity,
    MatchLocalPreference,
    MatchMetric,
    MatchPrefixList,
    MatchTag,
)
from repro.config.names import rename_snippet_lists
from repro.config.parser import ConfigParseError, parse_config
from repro.config.render import render_config
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.sets import (
    SetAsPathPrepend,
    SetClause,
    SetCommunity,
    SetLocalPreference,
    SetMetric,
    SetNextHop,
    SetTag,
    SetWeight,
)
from repro.config.store import ConfigStore

__all__ = [
    "Acl",
    "AclRule",
    "AsPathAccessList",
    "AsPathEntry",
    "CommunityList",
    "CommunityListEntry",
    "ConfigParseError",
    "ConfigStore",
    "MatchAsPath",
    "MatchClause",
    "MatchCommunity",
    "MatchLocalPreference",
    "MatchMetric",
    "MatchPrefixList",
    "MatchTag",
    "PortSpec",
    "PrefixList",
    "PrefixListEntry",
    "ProtocolSpec",
    "RouteMap",
    "RouteMapStanza",
    "SetAsPathPrepend",
    "SetClause",
    "SetCommunity",
    "SetLocalPreference",
    "SetMetric",
    "SetNextHop",
    "SetTag",
    "SetWeight",
    "parse_config",
    "render_config",
    "rename_snippet_lists",
]
