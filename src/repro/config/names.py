"""Name-collision resolution for snippet insertion.

The LLM synthesises its snippet in isolation, so the ancillary lists it
defines (``COM_LIST``, ``PREFIX_100``, ...) may collide with, or simply
not follow, the naming scheme of the target configuration.  Figure 2 of
the paper notes that "data structure names are automatically updated by
the tool during insertion" (e.g. the snippet's lists become ``D2``/``D3``
next to the existing ``D0``/``D1``).  This module implements that rename.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.config.matches import (
    MatchAsPath,
    MatchClause,
    MatchCommunity,
    MatchPrefixList,
)
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore

_NUMBERED_NAME = re.compile(r"^([A-Za-z_]+?)(\d+)$")


def numbered_family(name: str) -> Optional[Tuple[str, int]]:
    """Split a ``<stem><number>`` name, e.g. ``D2`` -> ``("D", 2)``.

    Returns ``None`` for names that do not end in digits (or contain a
    digit mid-name, which breaks the family pattern).
    """
    match = _NUMBERED_NAME.match(name)
    if match is None:
        return None
    return match.group(1), int(match.group(2))


def _family_counter(existing: Iterable[str]) -> Optional[Tuple[str, int]]:
    """Detect a dominant ``<stem><number>`` naming family, e.g. D0/D1 -> (D, 2).

    Returns the stem and the next free number, or ``None`` when the
    existing names establish no clear family.  A family is clear when

    * every name belongs to one numbered family (any size, so a lone
      ``PREFIX_100`` still seeds the ``PREFIX_`` family), or
    * at least two names share one stem and strictly more of them than
      of any other numbered stem — deviant names (descriptive ones, or
      mixed-stem families that merely share a prefix, like ``D0``/``D1``
      next to ``DENY_EXT2``) no longer veto the dominant family.

    An empty iterable (no existing names at all) yields ``None``.
    """
    members: Dict[str, int] = {}
    highest: Dict[str, int] = {}
    total = 0
    for name in existing:
        total += 1
        family = numbered_family(name)
        if family is None:
            continue
        stem, number = family
        members[stem] = members.get(stem, 0) + 1
        highest[stem] = max(highest.get(stem, -1), number)
    if total == 0 or not members:
        return None
    if len(members) == 1 and sum(members.values()) == total:
        ((stem, count),) = members.items()
        return stem, highest[stem] + 1
    best = max(members.values())
    dominant = [stem for stem, count in members.items() if count == best]
    if best < 2 or len(dominant) != 1:
        return None
    stem = dominant[0]
    return stem, highest[stem] + 1


def _fresh_name(base: str, taken: Set[str]) -> str:
    if base not in taken:
        return base
    counter = 2
    while f"{base}_{counter}" in taken:
        counter += 1
    return f"{base}_{counter}"


def plan_renames(snippet: ConfigStore, target: ConfigStore) -> Dict[str, str]:
    """Map each snippet list name to the name it should take in ``target``.

    If the target's lists follow one numbered family (``D0``, ``D1``, ...)
    the snippet's lists continue that family (``D2``, ``D3``, ...) in
    definition order, reproducing the paper's Figure 2.  Otherwise names
    are kept, suffixed only on collision.
    """
    target_names = set(target.list_names())
    snippet_names = [pl.name for pl in snippet.prefix_lists()]
    snippet_names += [cl.name for cl in snippet.community_lists()]
    snippet_names += [al.name for al in snippet.as_path_lists()]
    # Definition order in rename should mirror the listing order the paper
    # uses: community lists first, then prefix lists, then as-path lists.
    ordered = (
        [cl.name for cl in snippet.community_lists()]
        + [pl.name for pl in snippet.prefix_lists()]
        + [al.name for al in snippet.as_path_lists()]
    )

    family = _family_counter(target_names) if target_names else None
    renames: Dict[str, str] = {}
    taken = set(target_names)
    if family is not None:
        stem, counter = family
        for name in ordered:
            new_name = f"{stem}{counter}"
            while new_name in taken:
                counter += 1
                new_name = f"{stem}{counter}"
            counter += 1
            renames[name] = new_name
            taken.add(new_name)
        return renames
    for name in ordered:
        new_name = _fresh_name(name, taken)
        renames[name] = new_name
        taken.add(new_name)
    return renames


def _rename_match(clause: MatchClause, renames: Dict[str, str]) -> MatchClause:
    if isinstance(clause, MatchPrefixList):
        return MatchPrefixList(tuple(renames.get(n, n) for n in clause.names))
    if isinstance(clause, MatchCommunity):
        return MatchCommunity(tuple(renames.get(n, n) for n in clause.names))
    if isinstance(clause, MatchAsPath):
        return MatchAsPath(tuple(renames.get(n, n) for n in clause.names))
    return clause


def rename_snippet_lists(
    snippet: ConfigStore, target: ConfigStore
) -> ConfigStore:
    """A copy of ``snippet`` with its ancillary lists renamed for ``target``.

    Both the list definitions and every reference from the snippet's
    route-map stanzas are rewritten consistently.
    """
    renames = plan_renames(snippet, target)
    out = ConfigStore()
    for pl in snippet.prefix_lists():
        out.add_prefix_list(dataclasses.replace(pl, name=renames.get(pl.name, pl.name)))
    for cl in snippet.community_lists():
        out.add_community_list(
            dataclasses.replace(cl, name=renames.get(cl.name, cl.name))
        )
    for al in snippet.as_path_lists():
        out.add_as_path_list(
            dataclasses.replace(al, name=renames.get(al.name, al.name))
        )
    for rm in snippet.route_maps():
        stanzas = tuple(
            RouteMapStanza(
                seq=s.seq,
                action=s.action,
                matches=tuple(_rename_match(m, renames) for m in s.matches),
                sets=s.sets,
            )
            for s in rm.stanzas
        )
        out.add_route_map(RouteMap(rm.name, stanzas))
    for acl in snippet.acls():
        out.add_acl(acl)
    return out


__all__ = ["plan_renames", "rename_snippet_lists"]
