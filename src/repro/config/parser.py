"""Parser for the Cisco IOS configuration subset used in the paper.

Supported constructs::

    ip as-path access-list <name> (permit|deny) <regex>
    ip community-list (expanded|standard) <name> (permit|deny) <body>
    ip prefix-list <name> [seq <n>] (permit|deny) <prefix> [ge <n>] [le <n>]
    route-map <name> (permit|deny) <seq>
      match ip address prefix-list <names...>
      match community <names...>
      match as-path <names...>
      match (local-preference|metric|tag) <value>
      set (metric|local-preference|tag|weight) <value>
      set community <communities...> [additive]
      set ip next-hop <address>
      set as-path prepend <asns...>
    ip access-list extended <name>
      [<seq>] (permit|deny) <proto> <endpoint> [ports] <endpoint> [ports]
              [established]

Comment lines (``!``) and blank lines are ignored.  All errors carry the
offending line number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.config.lists import (
    AsPathAccessList,
    AsPathEntry,
    CommunityList,
    CommunityListEntry,
    PrefixList,
    PrefixListEntry,
)
from repro.config.matches import (
    MatchAsPath,
    MatchClause,
    MatchCommunity,
    MatchLocalPreference,
    MatchMetric,
    MatchPrefixList,
    MatchTag,
)
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.sets import (
    SetAsPathPrepend,
    SetClause,
    SetCommunity,
    SetLocalPreference,
    SetMetric,
    SetNextHop,
    SetTag,
    SetWeight,
)
from repro.config.store import ConfigStore
from repro.netaddr import Ipv4Address, Ipv4Prefix, Ipv4Wildcard


class ConfigParseError(ValueError):
    """Raised when configuration text cannot be parsed."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


class _ConfigParser:
    """Line-oriented parser building up a :class:`ConfigStore`."""

    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.index = 0
        # Accumulators: objects are finalised at end-of-parse so entries
        # for one list may be interleaved with other statements, as they
        # are in real configs.
        self.prefix_entries: Dict[str, List[PrefixListEntry]] = {}
        self.prefix_auto_seq: Dict[str, int] = {}
        self.community_entries: Dict[str, Tuple[bool, List[CommunityListEntry]]] = {}
        self.as_path_entries: Dict[str, List[AsPathEntry]] = {}
        self.route_map_stanzas: Dict[str, List[RouteMapStanza]] = {}
        self.acl_rules: Dict[str, List[AclRule]] = {}
        self.acl_order: List[str] = []

    # ------------------------------------------------------------ plumbing

    def _error(self, message: str) -> ConfigParseError:
        line = self.lines[self.index - 1] if self.index else ""
        return ConfigParseError(self.index, line, message)

    def _next_line(self) -> Optional[str]:
        while self.index < len(self.lines):
            raw = self.lines[self.index]
            self.index += 1
            stripped = raw.strip()
            if stripped and not stripped.startswith("!"):
                return raw
        return None

    def _peek_line(self) -> Optional[str]:
        save = self.index
        line = self._next_line()
        self.index = save
        return line

    # --------------------------------------------------------------- parse

    def parse(self) -> ConfigStore:
        while True:
            raw = self._next_line()
            if raw is None:
                break
            tokens = raw.split()
            head = tokens[0]
            if head == "ip":
                self._parse_ip_statement(tokens)
            elif head == "route-map":
                self._parse_route_map(tokens)
            else:
                raise self._error(f"unknown statement {head!r}")
        return self._finalise()

    def _parse_ip_statement(self, tokens: List[str]) -> None:
        if len(tokens) < 2:
            raise self._error("truncated 'ip' statement")
        kind = tokens[1]
        if kind == "prefix-list":
            self._parse_prefix_list(tokens)
        elif kind == "community-list":
            self._parse_community_list(tokens)
        elif kind == "as-path" and len(tokens) > 2 and tokens[2] == "access-list":
            self._parse_as_path_list(tokens)
        elif kind == "access-list":
            self._parse_acl(tokens)
        else:
            raise self._error(f"unknown 'ip {kind}' statement")

    # ------------------------------------------------------- ancillary lists

    def _parse_prefix_list(self, tokens: List[str]) -> None:
        # ip prefix-list NAME [seq N] ACTION PREFIX [ge N] [le N]
        it = iter(tokens[2:])
        try:
            name = next(it)
            word = next(it)
            if word == "seq":
                seq = self._int(next(it), "sequence number")
                action = next(it)
            else:
                seq = self.prefix_auto_seq.get(name, 0) + 5
                action = word
            prefix_text = next(it)
        except StopIteration:
            raise self._error("truncated prefix-list entry") from None
        ge = le = None
        rest = list(it)
        while rest:
            key = rest.pop(0)
            if not rest:
                raise self._error(f"missing value after {key!r}")
            value = self._int(rest.pop(0), key)
            if key == "ge":
                ge = value
            elif key == "le":
                le = value
            else:
                raise self._error(f"unexpected token {key!r}")
        try:
            entry = PrefixListEntry(
                seq=seq,
                action=action,
                prefix=Ipv4Prefix.parse(prefix_text),
                ge=ge,
                le=le,
            )
        except ValueError as exc:
            raise self._error(str(exc)) from None
        self.prefix_auto_seq[name] = max(self.prefix_auto_seq.get(name, 0), seq)
        self.prefix_entries.setdefault(name, []).append(entry)

    def _parse_community_list(self, tokens: List[str]) -> None:
        # ip community-list (expanded|standard) NAME ACTION BODY...
        if len(tokens) < 6:
            raise self._error("truncated community-list entry")
        kind, name, action = tokens[2], tokens[3], tokens[4]
        body = tokens[5:]
        if kind not in ("expanded", "standard"):
            raise self._error(f"community-list kind must be expanded/standard, got {kind!r}")
        expanded = kind == "expanded"
        try:
            if expanded:
                entry = CommunityListEntry(action=action, regex=" ".join(body))
            else:
                entry = CommunityListEntry(action=action, communities=tuple(body))
        except ValueError as exc:
            raise self._error(str(exc)) from None
        known = self.community_entries.setdefault(name, (expanded, []))
        if known[0] != expanded:
            raise self._error(
                f"community-list {name!r} mixes expanded and standard entries"
            )
        known[1].append(entry)

    def _parse_as_path_list(self, tokens: List[str]) -> None:
        # ip as-path access-list NAME ACTION REGEX
        if len(tokens) < 6:
            raise self._error("truncated as-path access-list entry")
        name, action = tokens[3], tokens[4]
        regex = " ".join(tokens[5:])
        try:
            entry = AsPathEntry(action=action, regex=regex)
        except ValueError as exc:
            raise self._error(str(exc)) from None
        self.as_path_entries.setdefault(name, []).append(entry)

    # ------------------------------------------------------------ route-maps

    def _parse_route_map(self, tokens: List[str]) -> None:
        if len(tokens) != 4:
            raise self._error("expected 'route-map NAME ACTION SEQ'")
        name, action = tokens[1], tokens[2]
        seq = self._int(tokens[3], "stanza sequence")
        matches: List[MatchClause] = []
        sets: List[SetClause] = []
        while True:
            peeked = self._peek_line()
            if peeked is None:
                break
            words = peeked.split()
            if words[0] == "match":
                self._next_line()
                matches.append(self._parse_match(words))
            elif words[0] == "set":
                self._next_line()
                sets.append(self._parse_set(words))
            else:
                break
        try:
            stanza = RouteMapStanza(
                seq=seq, action=action, matches=tuple(matches), sets=tuple(sets)
            )
        except ValueError as exc:
            raise self._error(str(exc)) from None
        self.route_map_stanzas.setdefault(name, []).append(stanza)

    def _parse_match(self, words: List[str]) -> MatchClause:
        if len(words) < 2:
            raise self._error("truncated match clause")
        kind = words[1]
        if kind == "ip":
            if words[1:4] != ["ip", "address", "prefix-list"] or len(words) < 5:
                raise self._error("expected 'match ip address prefix-list NAMES'")
            return MatchPrefixList(tuple(words[4:]))
        if kind == "community":
            if len(words) < 3:
                raise self._error("match community needs at least one list name")
            return MatchCommunity(tuple(words[2:]))
        if kind == "as-path":
            if len(words) < 3:
                raise self._error("match as-path needs at least one list name")
            return MatchAsPath(tuple(words[2:]))
        if kind in ("local-preference", "metric", "tag"):
            if len(words) != 3:
                raise self._error(f"match {kind} takes one value")
            value = self._int(words[2], kind)
            if kind == "local-preference":
                return MatchLocalPreference(value)
            if kind == "metric":
                return MatchMetric(value)
            return MatchTag(value)
        raise self._error(f"unknown match clause {kind!r}")

    def _parse_set(self, words: List[str]) -> SetClause:
        if len(words) < 2:
            raise self._error("truncated set clause")
        kind = words[1]
        if kind in ("metric", "local-preference", "tag", "weight"):
            if len(words) != 3:
                raise self._error(f"set {kind} takes one value")
            value = self._int(words[2], kind)
            mapping = {
                "metric": SetMetric,
                "local-preference": SetLocalPreference,
                "tag": SetTag,
                "weight": SetWeight,
            }
            return mapping[kind](value)
        if kind == "community":
            values = words[2:]
            additive = False
            if values and values[-1] == "additive":
                additive = True
                values = values[:-1]
            if not values:
                raise self._error("set community needs at least one community")
            return SetCommunity(tuple(values), additive=additive)
        if kind == "ip":
            if words[1:3] != ["ip", "next-hop"] or len(words) != 4:
                raise self._error("expected 'set ip next-hop ADDRESS'")
            try:
                return SetNextHop(Ipv4Address.parse(words[3]))
            except ValueError as exc:
                raise self._error(str(exc)) from None
        if kind == "as-path":
            if words[1:3] != ["as-path", "prepend"] or len(words) < 4:
                raise self._error("expected 'set as-path prepend ASNS'")
            return SetAsPathPrepend(
                tuple(self._int(w, "ASN") for w in words[3:])
            )
        raise self._error(f"unknown set clause {kind!r}")

    # ------------------------------------------------------------------ ACLs

    def _parse_acl(self, tokens: List[str]) -> None:
        # ip access-list extended NAME
        if len(tokens) != 4 or tokens[2] != "extended":
            raise self._error("expected 'ip access-list extended NAME'")
        name = tokens[3]
        if name not in self.acl_rules:
            self.acl_rules[name] = []
            self.acl_order.append(name)
        rules = self.acl_rules[name]
        auto_seq = rules[-1].seq if rules else 0
        while True:
            peeked = self._peek_line()
            if peeked is None:
                break
            words = peeked.split()
            if words[0] not in ("permit", "deny") and not words[0].isdigit():
                break
            self._next_line()
            rules.append(self._parse_acl_rule(words, auto_seq))
            auto_seq = rules[-1].seq

    def _parse_acl_rule(self, words: List[str], auto_seq: int) -> AclRule:
        queue = list(words)
        if queue[0].isdigit():
            seq = int(queue.pop(0))
        else:
            seq = auto_seq + 10
        if not queue:
            raise self._error("truncated ACL rule")
        action = queue.pop(0)
        if not queue:
            raise self._error("ACL rule missing protocol")
        try:
            protocol = ProtocolSpec(queue.pop(0))
        except ValueError as exc:
            raise self._error(str(exc)) from None
        src = self._parse_endpoint(queue)
        src_ports = self._parse_ports(queue)
        dst = self._parse_endpoint(queue)
        dst_ports = self._parse_ports(queue)
        established = False
        if queue and queue[0] == "established":
            queue.pop(0)
            established = True
        if queue:
            raise self._error(f"trailing tokens in ACL rule: {queue}")
        try:
            return AclRule(
                seq=seq,
                action=action,
                protocol=protocol,
                src=src,
                dst=dst,
                src_ports=src_ports,
                dst_ports=dst_ports,
                established=established,
            )
        except ValueError as exc:
            raise self._error(str(exc)) from None

    def _parse_endpoint(self, queue: List[str]) -> Ipv4Wildcard:
        if not queue:
            raise self._error("ACL rule missing an address endpoint")
        word = queue.pop(0)
        try:
            if word == "any":
                return Ipv4Wildcard.any()
            if word == "host":
                if not queue:
                    raise self._error("'host' missing its address")
                return Ipv4Wildcard.host(Ipv4Address.parse(queue.pop(0)))
            if not queue:
                raise self._error(f"endpoint {word!r} missing its wildcard mask")
            return Ipv4Wildcard(
                Ipv4Address.parse(word), Ipv4Address.parse(queue.pop(0))
            )
        except ValueError as exc:
            raise self._error(str(exc)) from None

    def _parse_ports(self, queue: List[str]) -> PortSpec:
        if not queue or queue[0] not in ("eq", "neq", "lt", "gt", "range"):
            return PortSpec()
        op = queue.pop(0)
        values: List[int] = []
        expected = 2 if op == "range" else 1
        while queue and queue[0].isdigit():
            values.append(int(queue.pop(0)))
            if op in ("lt", "gt", "range") and len(values) == expected:
                break
        try:
            return PortSpec(op, tuple(values))
        except ValueError as exc:
            raise self._error(str(exc)) from None

    # -------------------------------------------------------------- finalise

    def _int(self, text: str, what: str) -> int:
        if not text.lstrip("-").isdigit():
            raise self._error(f"expected integer {what}, got {text!r}")
        return int(text)

    def _finalise(self) -> ConfigStore:
        store = ConfigStore()
        for name, entries in self.prefix_entries.items():
            ordered = tuple(sorted(entries, key=lambda e: e.seq))
            store.add_prefix_list(PrefixList(name, ordered))
        for name, (expanded, entries) in self.community_entries.items():
            store.add_community_list(
                CommunityList(name, tuple(entries), expanded=expanded)
            )
        for name, entries in self.as_path_entries.items():
            store.add_as_path_list(AsPathAccessList(name, tuple(entries)))
        for name, stanzas in self.route_map_stanzas.items():
            ordered = tuple(sorted(stanzas, key=lambda s: s.seq))
            try:
                store.add_route_map(RouteMap(name, ordered))
            except ValueError as exc:
                raise ConfigParseError(0, name, str(exc)) from None
        for name in self.acl_order:
            try:
                store.add_acl(Acl(name, tuple(self.acl_rules[name])))
            except ValueError as exc:
                raise ConfigParseError(0, name, str(exc)) from None
        return store


def parse_config(text: str) -> ConfigStore:
    """Parse IOS configuration text into a :class:`ConfigStore`."""
    return _ConfigParser(text).parse()


__all__ = ["ConfigParseError", "parse_config"]
