"""Line-level configuration diffs.

Incremental updates need audit trails: operators review what an update
actually changed before pushing it.  :func:`config_diff` renders two
stores and reports added/removed lines in unified style (a deliberate,
dependency-free subset of ``difflib`` output).
"""

from __future__ import annotations

import difflib
from typing import List

from repro.config.render import render_config
from repro.config.store import ConfigStore


def config_diff(before: ConfigStore, after: ConfigStore) -> str:
    """A unified diff of the rendered configurations ('' if identical)."""
    old = render_config(before).splitlines()
    new = render_config(after).splitlines()
    lines: List[str] = list(
        difflib.unified_diff(old, new, "before", "after", lineterm="")
    )
    return "\n".join(lines)


def added_lines(before: ConfigStore, after: ConfigStore) -> List[str]:
    """Just the configuration lines the update introduced."""
    return [
        line[1:]
        for line in config_diff(before, after).splitlines()
        if line.startswith("+") and not line.startswith("+++")
    ]


def removed_lines(before: ConfigStore, after: ConfigStore) -> List[str]:
    """Just the configuration lines the update removed."""
    return [
        line[1:]
        for line in config_diff(before, after).splitlines()
        if line.startswith("-") and not line.startswith("---")
    ]


__all__ = ["added_lines", "config_diff", "removed_lines"]
