"""Route-map match clauses.

A stanza's clauses are evaluated conjunctively (all must match); multiple
list names inside one clause are disjunctive, mirroring IOS behaviour of
``match ip address prefix-list A B`` ("matches A or B").

Concrete evaluation needs the enclosing :class:`~repro.config.store.ConfigStore`
to resolve list names; dangling references raise ``KeyError`` with the
offending name so configuration bugs surface loudly.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Tuple

from repro.route import BgpRoute

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.config.store import ConfigStore


class MatchClause:
    """Base class for route-map match clauses."""

    __slots__ = ()

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class MatchPrefixList(MatchClause):
    """``match ip address prefix-list <names...>``"""

    names: Tuple[str, ...]

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        return any(
            store.prefix_list(name).permits(route.network) for name in self.names
        )


@dataclasses.dataclass(frozen=True)
class MatchCommunity(MatchClause):
    """``match community <names...>``"""

    names: Tuple[str, ...]

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        return any(
            store.community_list(name).permits(route) for name in self.names
        )


@dataclasses.dataclass(frozen=True)
class MatchAsPath(MatchClause):
    """``match as-path <names...>``"""

    names: Tuple[str, ...]

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        return any(
            store.as_path_list(name).permits(route) for name in self.names
        )


@dataclasses.dataclass(frozen=True)
class MatchLocalPreference(MatchClause):
    """``match local-preference <value>``"""

    value: int

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        return route.local_preference == self.value


@dataclasses.dataclass(frozen=True)
class MatchMetric(MatchClause):
    """``match metric <value>``"""

    value: int

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        return route.metric == self.value


@dataclasses.dataclass(frozen=True)
class MatchTag(MatchClause):
    """``match tag <value>``"""

    value: int

    def matches(self, route: BgpRoute, store: "ConfigStore") -> bool:
        return route.tag == self.value


__all__ = [
    "MatchClause",
    "MatchPrefixList",
    "MatchCommunity",
    "MatchAsPath",
    "MatchLocalPreference",
    "MatchMetric",
    "MatchTag",
]
