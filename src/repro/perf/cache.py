"""Hash-consing and memoization primitives for the symbolic core.

The analysis engines (:mod:`repro.analysis.headerspace`,
:mod:`repro.analysis.routespace`, :mod:`repro.netaddr.intervals`) spend
almost all of their time re-deriving the same small algebraic facts:
the §3 overlap study intersects the same interned interval sets hundreds
of thousands of times, and first-match reachability re-tests emptiness
of regions it has already carved.  This module provides the two shared
mechanisms those engines build on:

* an :class:`Interner` hash-conses immutable values — structurally equal
  values collapse to one canonical object, so equality checks hit the
  ``is`` fast path and memo-table keys hash once;
* a :class:`Memo` is a bounded LRU table for pure operation results,
  keyed by the (interned) operands.

Both are registered in a process-wide registry so the whole cache layer
can be cleared (:func:`clear_caches`), inspected (:func:`cache_stats`),
or bypassed (:func:`disabled`, used by the differential tests that pin
the memoized engines to the original semantics).  Hit/miss totals are
kept as plain integers — cheap enough for the innermost loops — and
published to the active :mod:`repro.obs` recorder on demand as
``cache.hits`` / ``cache.misses`` counters (:func:`publish_counters`).

Correctness never depends on cache *content*: every table stores results
of pure functions over immutable values, so eviction, clearing, or
disabling only changes speed.  The tables are intentionally lock-free;
concurrent use can at worst lose an entry (or a hit/miss count), never
corrupt a result.  The one fully-locked primitive is
:class:`SingleFlight`, which coalesces concurrent computations of the
same key into a single call — a *correctness* property for impure or
metered upstreams (the serving layer's LLM deduplication builds on it,
see :class:`repro.llm.dedup.DedupClient`).
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    TypeVar,
    Union,
    cast,
)

T = TypeVar("T", bound=Hashable)
V = TypeVar("V")

#: Default bound for one memo table; small entries, so this is a few MB.
DEFAULT_MEMO_SIZE = 1 << 16

#: Default bound for one intern table.
DEFAULT_INTERN_SIZE = 1 << 17

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()

_enabled: bool = True


class Memo:
    """A bounded LRU table for the results of one pure operation.

    ``lookup(key, compute)`` is the only entry point the engines use: it
    returns the cached value, or calls ``compute()`` and caches the
    result.  ``None`` results are cached too (witness extraction returns
    ``None`` for empty regions).  When the cache layer is disabled the
    table is bypassed entirely and nothing is counted.
    """

    def __init__(self, name: str, max_size: int = DEFAULT_MEMO_SIZE) -> None:
        self.name = name
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._table: "OrderedDict[Hashable, object]" = OrderedDict()
        _REGISTRY.append(self)

    def lookup(self, key: Hashable, compute: Callable[[], V]) -> V:
        if not _enabled:
            return compute()
        table = self._table
        value = table.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            try:
                table.move_to_end(key)
            except KeyError:  # pragma: no cover - concurrent eviction
                pass
            return value  # type: ignore[return-value]
        self.misses += 1
        result = compute()
        table[key] = result
        if len(table) > self.max_size:
            try:
                table.popitem(last=False)
            except KeyError:  # pragma: no cover - concurrent eviction
                pass
        return result

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop every entry; hit/miss totals are preserved."""
        self._table.clear()


class Interner:
    """A bounded intern table: structurally equal values become one object.

    Interned values compare equal by identity, which makes every
    downstream dict lookup, memo key, and ``==`` check cheap.  Eviction
    is safe: an evicted value merely loses its canonical status, and a
    later intern of an equal value starts a new equivalence class.
    """

    def __init__(self, name: str, max_size: int = DEFAULT_INTERN_SIZE) -> None:
        self.name = name
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._table: "OrderedDict[Hashable, Hashable]" = OrderedDict()
        _REGISTRY.append(self)

    def intern(self, value: T) -> T:
        if not _enabled:
            return value
        table = self._table
        canonical = table.get(value, _MISSING)
        if canonical is not _MISSING:
            self.hits += 1
            return canonical  # type: ignore[return-value]
        self.misses += 1
        table[value] = value
        if len(table) > self.max_size:
            try:
                table.popitem(last=False)
            except KeyError:  # pragma: no cover - concurrent eviction
                pass
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop every entry; hit/miss totals are preserved."""
        self._table.clear()


class _InFlight:
    """One computation in progress: waiters block on ``done``."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Coalesce concurrent computations of the same key into one call.

    ``do(key, compute)`` guarantees that at any moment at most one thread
    is running ``compute()`` for a given key: the first caller (the
    *leader*) computes; callers arriving while that computation is in
    flight (*followers*) block and receive the leader's result — or its
    exception — when it lands.  Once a computation completes the key
    leaves the in-flight table, so single-flight alone is **not** a
    cache; pair it with a :class:`Memo` when completed results should be
    reused (see :class:`repro.llm.dedup.DedupClient`).

    Unlike :class:`Memo`/:class:`Interner` this class is fully locked —
    it exists to uphold a *correctness* property (one upstream call per
    in-flight key), not to trade speed for memory — and it is therefore
    deliberately independent of :func:`configure`/:func:`disabled`:
    bypassing it would change how many upstream calls happen, which an
    impure upstream (a metered API, a fault injector) can observe.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        #: Computations actually run (one per coalesced group).
        self.leaders = 0
        #: Calls served by another thread's in-flight computation.
        self.followers = 0
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _InFlight] = {}

    def do(self, key: Hashable, compute: Callable[[], V]) -> V:
        """Return ``compute()`` for ``key``, coalescing concurrent calls."""
        with self._lock:
            call = self._inflight.get(key)
            if call is None:
                call = _InFlight()
                self._inflight[key] = call
                leader = True
                self.leaders += 1
            else:
                leader = False
                self.followers += 1
        if leader:
            try:
                call.result = compute()
            except BaseException as exc:
                call.error = exc
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                call.done.set()
        else:
            call.done.wait()
            if call.error is not None:
                raise call.error
        return cast(V, call.result)

    def in_flight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._inflight)


_REGISTRY: List[Union[Memo, Interner]] = []


def enabled() -> bool:
    """True when memoization and interning are active (the default)."""
    return _enabled


def configure(enabled: bool) -> None:
    """Globally enable or disable the whole cache layer."""
    global _enabled
    _enabled = enabled


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Bypass every cache for the extent of the block.

    The differential tests run the engines once normally and once under
    this context to prove the memoized results match the directly
    computed ones.  Tables are cleared on entry *and* exit so no state
    leaks across the boundary in either direction.
    """
    global _enabled
    previous = _enabled
    clear_caches()
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous
        clear_caches()


@contextlib.contextmanager
def isolated() -> Iterator[None]:
    """Run a block from cold caches without leaking counter growth.

    On entry every table is cleared (a cold start, as in a freshly
    forked worker process); on exit the tables are cleared again and
    every hit/miss total is restored to its entry value, so the block's
    cache activity is invisible to the enclosing process.  The campaign
    runner's serial fallback uses this to stay byte-identical — results
    *and* counters — to a process-pool run, where worker-side totals
    never reach the parent.
    """
    snapshot = [(table, table.hits, table.misses) for table in _REGISTRY]
    known = {id(table) for table in _REGISTRY}
    clear_caches()
    try:
        yield
    finally:
        for table, hits, misses in snapshot:
            table.hits = hits
            table.misses = misses
        for table in _REGISTRY:
            if id(table) not in known:
                table.hits = 0
                table.misses = 0
        clear_caches()


def clear_caches() -> None:
    """Empty every registered memo and intern table.

    This is the only "invalidation" the layer needs: all cached values
    are results of pure functions, so clearing affects memory and speed,
    never semantics.  The campaign runner clears at the start of every
    chunk so per-chunk cache behaviour (and therefore the ``cache.*``
    counters) is deterministic regardless of worker scheduling.
    """
    for table in _REGISTRY:
        table.clear()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-table statistics: hits, misses, and current size."""
    return {
        table.name: {
            "hits": table.hits,
            "misses": table.misses,
            "size": len(table),
        }
        for table in _REGISTRY
    }


def cache_totals() -> Dict[str, int]:
    """Aggregate and per-table counter values in ``cache.*`` obs naming."""
    totals: Dict[str, int] = {"cache.hits": 0, "cache.misses": 0}
    for table in _REGISTRY:
        totals["cache.hits"] += table.hits
        totals["cache.misses"] += table.misses
        totals[f"cache.hits.{table.name}"] = table.hits
        totals[f"cache.misses.{table.name}"] = table.misses
    return totals


def publish_counters(since: Dict[str, int]) -> Dict[str, int]:
    """Record cache-counter growth since ``since`` on the active recorder.

    ``since`` is an earlier :func:`cache_totals` snapshot (pass ``{}``
    for "since process start").  The delta for every counter that moved
    is published via :func:`repro.obs.count` — a no-op unless a recorder
    is installed — and returned.  Counting locally and publishing once
    keeps the innermost memo loops free of per-operation obs calls.
    """
    from repro import obs

    deltas: Dict[str, int] = {}
    for name, value in sorted(cache_totals().items()):
        delta = value - since.get(name, 0)
        if delta:
            deltas[name] = delta
            obs.count(name, delta)
    return deltas


__all__ = [
    "DEFAULT_INTERN_SIZE",
    "DEFAULT_MEMO_SIZE",
    "Interner",
    "Memo",
    "SingleFlight",
    "cache_stats",
    "cache_totals",
    "clear_caches",
    "configure",
    "disabled",
    "enabled",
    "isolated",
    "publish_counters",
]
