"""``repro.perf`` — the performance layer under the symbolic core.

Two pieces, documented in ``docs/PERFORMANCE.md``:

* :mod:`repro.perf.cache` — hash-consing (:class:`Interner`) and
  bounded LRU memoization (:class:`Memo`) for the interval-set,
  packet-region, and route-region algebras, with ``cache.hits`` /
  ``cache.misses`` observability counters;
* :mod:`repro.perf.campaign` — a process-pool runner that fans the §3
  overlap studies and the §5 evaluation across workers with
  deterministic result ordering and per-worker counter merging.

This package sits *below* the analysis engines in the layering:
``repro.netaddr`` and ``repro.analysis`` import :mod:`repro.perf.cache`,
so this ``__init__`` must stay import-light — it re-exports the cache
primitives only.  Import the campaign runner explicitly
(``from repro.perf import campaign``); it pulls in the overlap and
evaluation layers, which live above this package.
"""

from repro.perf.cache import (
    Interner,
    Memo,
    SingleFlight,
    cache_stats,
    cache_totals,
    clear_caches,
    configure,
    disabled,
    enabled,
    isolated,
    publish_counters,
)

__all__ = [
    "Interner",
    "Memo",
    "SingleFlight",
    "cache_stats",
    "cache_totals",
    "clear_caches",
    "configure",
    "disabled",
    "enabled",
    "isolated",
    "publish_counters",
]
