"""Parallel analysis campaigns with deterministic results and counters.

The §3 overlap studies classify every rule pair of ~11k ACLs and every
stanza pair of hundreds of route-maps — embarrassingly parallel work.
This module fans such a campaign across a process pool while keeping
the output *indistinguishable from a serial run*:

* the payload list is pre-partitioned into **contiguous chunks** whose
  boundaries depend only on the payload count and the chunk count, never
  on scheduling, and results are reassembled in chunk order;
* every chunk starts from **cold cache tables** (the per-chunk
  :func:`repro.perf.cache.isolated` scope) and records into a **fresh**
  :class:`repro.obs.Recorder`, so the per-chunk counters — including the
  ``cache.*`` hit/miss counters — are a pure function of the chunk's
  payloads;
* the per-chunk counters are merged by summation in sorted name order
  and published to the caller's active recorder once.

Parallel chunks run on the **persistent pool**
(:mod:`repro.perf.pool`): workers forked once from the warm parent and
reused across campaign calls, so repeat campaigns stop paying process
spawn and cold imports.  Only per-chunk *mutable* state (memo-table
entries, hit/miss tallies) is cleared between chunks; the fork-inherited
module graph and the interner's canonical module-level constants stay
warm.  The ``pool`` argument (or ``REPRO_POOL``) picks the engine:

``auto`` (default)
    persistent pool when the host has >1 CPU and ``fork`` exists;
    otherwise in-process (on a single core, serial *is* the optimum).
``persistent``
    always the persistent pool (the identity tests force this to
    exercise real worker processes even on one core).
``spawn``
    the legacy per-campaign ``ProcessPoolExecutor``.
``serial``
    in-process, single logical worker.

When ``chunks`` is not pinned and the persistent pool is in play, a
tiny **calibration pass** times the first few payloads (as real chunk
0) and sizes the remaining chunks toward a per-chunk wall-time target,
instead of the old ``chunks == workers`` rule.  Pin *both* ``workers``
and ``chunks`` when counters must be reproducible across machines, as
the benchmark suite does.

The serial fallback (``workers=1``, or a pool that cannot start) runs
the *identical* chunk function in-process, so a serial campaign produces
byte-identical results and counters to a parallel one — the property the
differential tests in ``tests/perf`` pin down.

Unlike :mod:`repro.perf.cache`, this module sits *above* the analysis
layers (it imports the overlap detectors), which is why it is not
re-exported from ``repro.perf``'s ``__init__``; import it explicitly::

    from repro.perf import campaign

    reports = campaign.acl_overlap_campaign(corpus.acls, workers=4).results
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.obs import telemetry
from repro.obs.telemetry import TraceContext
from repro.overlap.chains import chain_overlap_report
from repro.overlap.detector import acl_overlap_report, route_map_overlap_report
from repro.perf import cache as _perf
from repro.perf import pool as _pool

Number = Union[int, float]

#: A task implementation: ``fn(payload, context) -> picklable result``.
TaskFn = Callable[[Any, Any], Any]


# ------------------------------------------------------------- task kinds


def _acl_overlap_task(payload: Any, context: Any) -> Any:
    return acl_overlap_report(payload)


def _route_map_overlap_task(payload: Any, context: Any) -> Any:
    return route_map_overlap_report(payload, context)


def _chain_overlap_task(payload: Any, context: Any) -> Any:
    chain = [context.route_map(name) for name in payload]
    return chain_overlap_report(chain, context)


def _figure3_task(payload: Any, context: Any) -> Any:
    # Imported lazily: the evaluation pulls in the LLM and BGP layers,
    # which overlap campaigns never need.  The full Figure3Result holds
    # closures (the intent oracles), so workers reduce it to the
    # picklable facts the §5 evaluation reports.
    from repro.evalcase import build_figure3, figure4_rows

    result = build_figure3()
    return (tuple(figure4_rows(result.stats)), dict(result.policy_results))


def _netwide_path_task(payload: Any, context: Any) -> Any:
    # Imported lazily: the network-wide checks pull in the lint and BGP
    # layers, which overlap campaigns never need.
    from repro.lint.netwide.checks import analyze_path

    devices = {device.hostname: device for device in context}
    return analyze_path(payload, devices)


_TASKS: Dict[str, TaskFn] = {
    "acl-overlap": _acl_overlap_task,
    "route-map-overlap": _route_map_overlap_task,
    "chain-overlap": _chain_overlap_task,
    "figure3-eval": _figure3_task,
    "netwide-path": _netwide_path_task,
}


def task_kinds() -> Tuple[str, ...]:
    """The registered campaign task kinds, sorted."""
    return tuple(sorted(_TASKS))


# ---------------------------------------------------------------- chunking


def _chunk_bounds(count: int, chunk_count: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal ``[lo, hi)`` bounds covering ``range(count)``.

    Depends only on the two counts, so the partition — and therefore the
    per-chunk cache behaviour — is identical however the chunks are later
    scheduled onto workers.  When ``chunk_count > count`` (including
    single-item and empty campaigns) the surplus chunks would be empty;
    they are dropped rather than emitted, so no worker is ever handed an
    empty chunk and no chunk idles a worker.
    """
    if count <= 0:
        return []
    effective = max(1, min(chunk_count, count))
    base, extra = divmod(count, effective)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(effective):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _run_chunk(
    kind: str,
    payloads: Sequence[Any],
    context: Any,
    trace: Optional[TraceContext] = None,
) -> Tuple[List[Any], Dict[str, Number]]:
    """Run one chunk from a clean slate; returns (results, counters).

    Runs in a worker process (or in-process for the serial fallback —
    the code path is deliberately the same).  Caches are cleared first
    and a private recorder captures the chunk's counters, so the return
    value is a pure function of ``(kind, payloads, context)``.

    ``trace`` is the originating request's
    :class:`~repro.obs.telemetry.TraceContext`, re-activated inside the
    worker so anything trace-aware a task touches (a remote LLM call
    stamping its trace header, a journal event) still correlates back
    to the request that launched the campaign.
    """
    fn = _TASKS[kind]
    recorder = obs.Recorder(capture_spans=False)
    with telemetry.tracing(trace), _perf.isolated(), obs.recording(recorder):
        before = _perf.cache_totals()
        results = [fn(payload, context) for payload in payloads]
        _perf.publish_counters(before)
    return results, dict(recorder.counters)


def _run_chunk_task(
    task: Tuple[str, Sequence[Any], Any, Optional[TraceContext]]
) -> Tuple[List[Any], Dict[str, Number]]:
    kind, payloads, context, trace = task
    return _run_chunk(kind, payloads, context, trace)


# ---------------------------------------------------------------- running


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """The outcome of one campaign run.

    ``results`` is in payload order regardless of scheduling, and
    ``counters`` is the chunk-summed metric set (already published to
    the recorder that was active when the campaign ran).
    """

    results: Tuple[Any, ...]
    counters: Dict[str, Number]
    workers: int
    chunks: int


def default_workers() -> int:
    """The worker count used when none is requested: the CPU count."""
    return os.cpu_count() or 1


#: Valid ``pool=`` / ``REPRO_POOL`` engine names.
POOL_MODES = ("auto", "persistent", "spawn", "serial")

#: Calibration pass: time this many leading payloads as real chunk 0...
_PROBE_ITEMS = 4

#: ...then size the remaining chunks toward this much wall time each.
_TARGET_CHUNK_SECONDS = 0.05

#: Upper bound on calibrated chunks, per worker (keeps per-chunk
#: pickle/IPC overhead amortized even when items are microseconds).
_MAX_CHUNKS_PER_WORKER = 16


def resolve_pool_mode(pool: Optional[str] = None) -> str:
    """The campaign engine: ``pool`` argument, else ``REPRO_POOL``, else auto."""
    mode = pool if pool is not None else os.environ.get("REPRO_POOL", "")
    mode = mode.strip() or "auto"
    if mode not in POOL_MODES:
        raise ValueError(
            f"unknown pool mode {mode!r}; known: {', '.join(POOL_MODES)}"
        )
    return mode


def _choose_engine(mode: str, worker_count: int) -> str:
    """Pick the execution engine (``inline``/``persistent``/``spawn``)."""
    if mode == "serial" or worker_count == 1:
        return "inline"
    if mode == "spawn":
        return "spawn"
    if mode == "persistent":
        return "persistent" if _pool.fork_available() else "spawn"
    # auto: real processes only help with real parallel hardware.
    if _pool.fork_available() and (os.cpu_count() or 1) > 1:
        return "persistent"
    return "inline"


def _calibrated_rest_chunks(
    rest_count: int, probe_seconds: float, worker_count: int
) -> int:
    """How many chunks to cut the post-probe payloads into."""
    per_item = max(probe_seconds, 1e-9) / _PROBE_ITEMS
    per_chunk = max(1, round(_TARGET_CHUNK_SECONDS / per_item))
    wanted = math.ceil(rest_count / per_chunk)
    wanted = max(wanted, worker_count)
    wanted = min(wanted, worker_count * _MAX_CHUNKS_PER_WORKER, rest_count)
    return max(1, wanted)


def _run_persistent(
    kind: str,
    items: List[Any],
    context: Any,
    trace: Optional[TraceContext],
    worker_count: int,
    chunks: Optional[int],
) -> Tuple[List[Tuple[List[Any], Dict[str, Number]]], List[List[Any]]]:
    """Run on the shared persistent pool; returns (outcomes, chunk payloads).

    With ``chunks`` pinned the partition is the usual pure function of
    the counts.  Without it, the first :data:`_PROBE_ITEMS` payloads run
    as a timed probe chunk and the measured per-item cost sizes the rest.
    Raises :class:`repro.perf.pool.PoolBrokenError` /
    :class:`~repro.perf.pool.PoolTaskError` for the caller's fallback.
    """
    shared = _pool.get_shared_pool(worker_count)
    cache_on = _perf.enabled()
    if chunks is not None or len(items) <= _PROBE_ITEMS:
        chunk_count = max(1, min(chunks or worker_count, len(items) or 1))
        chunk_payloads = [
            items[lo:hi] for lo, hi in _chunk_bounds(len(items), chunk_count)
        ]
        outcomes = shared.run(kind, chunk_payloads, context, trace, cache_on)
        return outcomes, chunk_payloads
    probe = items[:_PROBE_ITEMS]
    started = time.perf_counter()
    outcomes = shared.run(kind, [probe], context, trace, cache_on)
    probe_seconds = time.perf_counter() - started
    rest = items[_PROBE_ITEMS:]
    rest_chunk_count = _calibrated_rest_chunks(
        len(rest), probe_seconds, worker_count
    )
    rest_chunks = [
        rest[lo:hi] for lo, hi in _chunk_bounds(len(rest), rest_chunk_count)
    ]
    outcomes = outcomes + shared.run(kind, rest_chunks, context, trace, cache_on)
    return outcomes, [probe] + rest_chunks


def run_campaign(
    kind: str,
    payloads: Sequence[Any],
    context: Any = None,
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> CampaignResult:
    """Fan ``payloads`` of one task ``kind`` across the campaign pool.

    ``workers`` defaults to the CPU count; ``workers=1`` forces the
    serial in-process fallback.  ``chunks`` defaults to a calibrated
    partition on the persistent pool (worker count elsewhere) — fix
    *both* when counters must be reproducible across machines, as the
    benchmark suite does.  ``context`` is pickled once per worker per
    campaign on the persistent pool (once per chunk on ``spawn``) and
    passed to every task (e.g. the :class:`ConfigStore` route-map guards
    resolve against).  ``pool`` picks the engine (see the module
    docstring); it defaults to ``REPRO_POOL`` or ``auto``.
    """
    if kind not in _TASKS:
        raise ValueError(
            f"unknown campaign kind {kind!r}; known: {', '.join(task_kinds())}"
        )
    mode = resolve_pool_mode(pool)
    items = list(payloads)
    worker_count = workers if workers is not None else default_workers()
    worker_count = max(1, min(worker_count, len(items) or 1))
    if mode == "serial":
        worker_count = 1
    engine = _choose_engine(mode, worker_count)

    trace = telemetry.current_trace()
    outcomes: Optional[List[Tuple[List[Any], Dict[str, Number]]]] = None
    chunk_payloads: Optional[List[List[Any]]] = None
    republish_trace: Optional[TraceContext] = None

    if engine == "persistent":
        try:
            outcomes, chunk_payloads = _run_persistent(
                kind, items, context, trace, worker_count, chunks
            )
            # Pool workers accumulated into private recorders in other
            # processes; the re-publish below is the hub's only sight
            # of them, so it must carry the trace.
            republish_trace = trace
        except (_pool.PoolBrokenError, _pool.PoolTaskError):
            # Chunk outcomes are pure functions of their payloads, so an
            # in-process rerun is byte-identical — and a deterministic
            # task error re-raises as its real exception type here.
            outcomes = None

    if outcomes is None or chunk_payloads is None:
        chunk_count = max(1, min(chunks or worker_count, len(items) or 1))
        chunk_payloads = [
            items[lo:hi] for lo, hi in _chunk_bounds(len(items), chunk_count)
        ]
        tasks = [(kind, chunk, context, trace) for chunk in chunk_payloads]
        if engine == "spawn" and len(chunk_payloads) > 1:
            with ProcessPoolExecutor(max_workers=worker_count) as executor:
                outcomes = list(executor.map(_run_chunk_task, tasks))
            republish_trace = trace
        else:
            outcomes = [_run_chunk_task(task) for task in tasks]
            # In-process chunks already ran under the trace, so the hub
            # saw every delta as it happened; re-publishing below must
            # therefore stay trace-free or wide events would double-count.
            republish_trace = None

    results: List[Any] = []
    merged: Dict[str, Number] = {}
    for chunk_results, counters in outcomes:
        results.extend(chunk_results)
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value
    with telemetry.tracing(republish_trace):
        for name in sorted(merged):
            obs.count(name, merged[name])
    return CampaignResult(
        tuple(results), merged, worker_count, len(chunk_payloads)
    )


# ------------------------------------------------------------ conveniences


def acl_overlap_campaign(
    acls: Sequence[Any],
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> CampaignResult:
    """:func:`repro.overlap.detector.acl_overlap_report` over many ACLs."""
    return run_campaign(
        "acl-overlap", acls, workers=workers, chunks=chunks, pool=pool
    )


def route_map_overlap_campaign(
    route_maps: Sequence[Any],
    store: Any,
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> CampaignResult:
    """:func:`repro.overlap.detector.route_map_overlap_report` over many maps."""
    return run_campaign(
        "route-map-overlap",
        route_maps,
        context=store,
        workers=workers,
        chunks=chunks,
        pool=pool,
    )


def chain_overlap_campaign(
    chains: Sequence[Sequence[str]],
    store: Any,
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> CampaignResult:
    """:func:`repro.overlap.chains.chain_overlap_report` over neighbor chains."""
    return run_campaign(
        "chain-overlap",
        [tuple(chain) for chain in chains],
        context=store,
        workers=workers,
        chunks=chunks,
        pool=pool,
    )


def campus_overlap_study(
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    seed: int = 1421,
    total_acls: Optional[int] = None,
    route_maps: Optional[int] = None,
    pool: Optional[str] = None,
) -> Tuple[Any, Any, Any, int]:
    """The §3.2 campus study as a campaign.

    Returns ``(acl_stats, rm_stats, triple_report, device_count)`` —
    the same tuple the serial benchmark derives — where ``triple_report``
    is the CAMPUS_SPECIAL_TRIPLE route-map's overlap report.
    """
    from repro.overlap import AclCorpusStats, RouteMapCorpusStats
    from repro.synth import generate_campus_corpus

    kwargs: Dict[str, int] = {"seed": seed}
    if total_acls is not None:
        kwargs["total_acls"] = total_acls
    if route_maps is not None:
        kwargs["route_maps"] = route_maps
    corpus = generate_campus_corpus(**kwargs)
    acl_result = acl_overlap_campaign(
        corpus.acls, workers=workers, chunks=chunks, pool=pool
    )
    rm_result = route_map_overlap_campaign(
        corpus.route_maps, corpus.store, workers=workers, chunks=chunks,
        pool=pool,
    )
    acl_stats = AclCorpusStats.collect(acl_result.results)
    rm_stats = RouteMapCorpusStats.collect(rm_result.results)
    # Heavily scaled-down corpora (CLI --scale) may drop the special
    # route-map entirely; its report is None then.
    triple = next(
        (
            report
            for report in rm_result.results
            if report.name == "CAMPUS_SPECIAL_TRIPLE"
        ),
        None,
    )
    return acl_stats, rm_stats, triple, len(corpus.devices())


def cloud_overlap_study(
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    seed: int = 2025,
    scale: float = 1.0,
    pool: Optional[str] = None,
) -> Tuple[Any, Any, Tuple[int, int, int]]:
    """The §3.1 cloud-WAN study as a campaign.

    Returns ``(acl_stats, rm_stats, (chains, chains_with_overlaps,
    cross_map_pairs))`` — the same tuple the serial benchmark derives.
    """
    from repro.overlap import AclCorpusStats, RouteMapCorpusStats
    from repro.synth import generate_cloud_corpus

    corpus = generate_cloud_corpus(seed=seed, scale=scale)
    acl_result = acl_overlap_campaign(
        corpus.acls, workers=workers, chunks=chunks, pool=pool
    )
    rm_result = route_map_overlap_campaign(
        corpus.route_maps, corpus.store, workers=workers, chunks=chunks,
        pool=pool,
    )
    chain_result = chain_overlap_campaign(
        corpus.neighbor_chains, corpus.store, workers=workers, chunks=chunks,
        pool=pool,
    )
    acl_stats = AclCorpusStats.collect(acl_result.results)
    rm_stats = RouteMapCorpusStats.collect(rm_result.results)
    chains_with_overlaps = sum(
        1 for report in chain_result.results if report.has_overlap()
    )
    cross_map_pairs = sum(
        report.overlap_count for report in chain_result.results
    )
    return (
        acl_stats,
        rm_stats,
        (len(corpus.neighbor_chains), chains_with_overlaps, cross_map_pairs),
    )


def netwide_path_campaign(
    paths: Sequence[Any],
    devices: Sequence[Any],
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> CampaignResult:
    """:func:`repro.lint.netwide.checks.analyze_path` over many paths.

    Each result is the path's diagnostic tuple, in path order — the
    same tuples a serial loop over :func:`analyze_path` produces.
    """
    return run_campaign(
        "netwide-path",
        paths,
        context=tuple(devices),
        workers=workers,
        chunks=chunks,
        pool=pool,
    )


def evaluation_campaign(
    runs: int = 1,
    workers: Optional[int] = None,
    chunks: Optional[int] = None,
    pool: Optional[str] = None,
) -> CampaignResult:
    """Run the §5 Figure 3 evaluation ``runs`` times across workers.

    Each result is ``(figure4_rows, policy_results)``; the evaluation is
    deterministic, so every run must agree — the campaign differential
    test asserts exactly that.
    """
    return run_campaign(
        "figure3-eval",
        list(range(runs)),
        workers=workers,
        chunks=chunks,
        pool=pool,
    )


__all__ = [
    "CampaignResult",
    "POOL_MODES",
    "acl_overlap_campaign",
    "campus_overlap_study",
    "chain_overlap_campaign",
    "cloud_overlap_study",
    "default_workers",
    "evaluation_campaign",
    "netwide_path_campaign",
    "resolve_pool_mode",
    "route_map_overlap_campaign",
    "run_campaign",
    "task_kinds",
]
