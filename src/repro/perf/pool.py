"""A persistent fork-once worker pool for analysis campaigns.

``repro.perf.campaign`` historically built a fresh
``ProcessPoolExecutor`` per campaign, so every campaign paid process
spawn plus a cold import graph in each worker.  This module keeps a
small set of **forked** workers alive across campaign calls:

* workers are forked once from the fully-imported parent, so they
  inherit the warm module graph — compiled bytecode, the interner's
  canonical module-level constants (``U32``, ``EMPTY_SET``,
  ``FULL_PORT_RANGE``, …) and every ``repro`` module already loaded —
  for free, read-only, via copy-on-write;
* per-chunk *mutable* state is still wiped: every chunk runs under
  :func:`repro.perf.cache.isolated` with a private recorder, exactly
  like a serial chunk, so per-chunk results and counters stay a pure
  function of the chunk's payloads (the serial == pooled identity gate);
* the campaign ``context`` (e.g. a ``ConfigStore``) is pickled **once
  per worker per campaign**, not once per chunk;
* chunks are dispatched one-at-a-time per worker (a worker gets its
  next chunk when it finishes the last), which both load-balances and
  keeps at most one in-flight message per pipe — no pipe-buffer
  deadlocks.

Chunk→worker *assignment* is scheduling-dependent, and that is fine:
chunk *boundaries* are a pure function of the counts, and each chunk's
outcome is independent of which process runs it.  Results are
reassembled by chunk index.

A dead worker marks the pool broken (:class:`PoolBrokenError`); the
campaign layer falls back to an in-process rerun, which by the purity
contract produces identical output.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.connection
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perf import cache as _perf

ChunkOutcome = Tuple[List[Any], Dict[str, Any]]


class PoolBrokenError(RuntimeError):
    """A worker died; the pool is closed and must be recreated."""


class PoolTaskError(RuntimeError):
    """A task raised inside a worker; carries the worker's traceback text."""


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_main(conn: Any) -> None:
    """Worker loop: serve ``ctx``/``run`` messages until ``quit`` or EOF."""
    # Imported lazily (and found warm: the fork inherited the parent's
    # module graph) to keep pool module imports acyclic with campaign.
    from repro.perf.campaign import _run_chunk

    ctx_token: Optional[int] = None
    ctx_value: Any = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        tag = message[0]
        if tag == "quit":
            return
        if tag == "ctx":
            ctx_token, ctx_value = message[1], message[2]
            continue
        _, index, kind, payloads, token, trace, cache_on = message
        try:
            if token is None:
                context = None
            elif token == ctx_token:
                context = ctx_value
            else:
                raise RuntimeError(
                    f"worker missing campaign context {token!r}"
                )
            # Fork-once workers never see later configure() calls in the
            # parent, so the parent's cache flag rides along per chunk.
            previous = _perf.enabled()
            _perf.configure(cache_on)
            try:
                results, counters = _run_chunk(kind, payloads, context, trace)
            finally:
                _perf.configure(previous)
            conn.send(("ok", index, results, counters))
        except BaseException as exc:  # noqa: B036 - workers must not die on task errors
            try:
                conn.send(("err", index, f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):
                return


class _Worker:
    """One forked worker process and its duplex pipe."""

    __slots__ = ("process", "conn", "ctx_token")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.ctx_token: Optional[int] = None


class PersistentPool:
    """A reusable pool of forked campaign workers.

    ``run`` is thread-safe (serialized internally): the workers are a
    shared serial resource, so concurrent campaigns queue rather than
    interleave messages on the pipes.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not fork_available():
            raise PoolBrokenError("fork start method unavailable")
        self._target = workers
        self._context = multiprocessing.get_context("fork")
        self._workers: List[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False
        self._next_token = 1

    @property
    def size(self) -> int:
        """How many workers are currently alive."""
        return len(self._workers)

    @property
    def target(self) -> int:
        """The configured maximum worker count."""
        return self._target

    @property
    def closed(self) -> bool:
        """True once the pool has been shut down (or broke)."""
        return self._closed

    def grow(self, workers: int) -> None:
        """Raise the worker target (existing workers are kept)."""
        with self._lock:
            if workers > self._target:
                self._target = workers

    def ensure_workers(self, needed: int) -> None:
        """Fork workers up to ``min(needed, target)`` (idempotent)."""
        with self._lock:
            self._ensure_locked(needed)

    def _ensure_locked(self, needed: int) -> None:
        if self._closed:
            raise PoolBrokenError("pool is closed")
        goal = max(1, min(needed, self._target))
        while len(self._workers) < goal:
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process, parent_conn))

    def run(
        self,
        kind: str,
        chunks: Sequence[Sequence[Any]],
        context: Any,
        trace: Any,
        cache_enabled: bool,
    ) -> List[ChunkOutcome]:
        """Run every chunk on the pool; outcomes in chunk order.

        Raises :class:`PoolBrokenError` when a worker dies (the pool is
        closed first) and :class:`PoolTaskError` when a task raises —
        the error of the lowest-indexed failing chunk, after draining.
        """
        with self._lock:
            self._ensure_locked(len(chunks))
            workers = self._workers[: max(1, min(len(chunks), self._target))]
            token: Optional[int] = None
            if context is not None:
                token = self._next_token
                self._next_token += 1
            try:
                return self._dispatch_locked(
                    workers, kind, chunks, context, token, trace, cache_enabled
                )
            except PoolBrokenError:
                self._close_locked()
                raise

    def _dispatch_locked(
        self,
        workers: List[_Worker],
        kind: str,
        chunks: Sequence[Sequence[Any]],
        context: Any,
        token: Optional[int],
        trace: Any,
        cache_enabled: bool,
    ) -> List[ChunkOutcome]:
        outcomes: Dict[int, ChunkOutcome] = {}
        errors: Dict[int, str] = {}
        busy: Dict[Any, _Worker] = {}
        idle = list(workers)
        next_chunk = 0

        def send_next(worker: _Worker) -> None:
            nonlocal next_chunk
            index = next_chunk
            next_chunk += 1
            try:
                if token is not None and worker.ctx_token != token:
                    worker.conn.send(("ctx", token, context))
                    worker.ctx_token = token
                worker.conn.send(
                    ("run", index, kind, list(chunks[index]), token, trace,
                     cache_enabled)
                )
            except (OSError, ValueError) as exc:
                raise PoolBrokenError(f"worker pipe failed: {exc}") from exc
            busy[worker.conn] = worker

        while len(outcomes) + len(errors) < len(chunks):
            while idle and next_chunk < len(chunks):
                send_next(idle.pop())
            if not busy:
                break
            ready = multiprocessing.connection.wait(list(busy))
            for conn in ready:
                worker = busy.pop(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as exc:
                    raise PoolBrokenError(
                        f"worker died mid-chunk: {exc}"
                    ) from exc
                tag, index = reply[0], reply[1]
                if tag == "ok":
                    outcomes[index] = (reply[2], reply[3])
                else:
                    errors[index] = reply[2]
                idle.append(worker)
        if errors:
            first = min(errors)
            raise PoolTaskError(f"chunk {first}: {errors[first]}")
        if len(outcomes) != len(chunks):
            raise PoolBrokenError("pool drained without completing all chunks")
        return [outcomes[index] for index in range(len(chunks))]

    def close(self) -> None:
        """Terminate all workers; the pool cannot be reused."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("quit",))
            except (OSError, ValueError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
        self._workers = []


# ------------------------------------------------------------- shared pool

_SHARED: Optional[PersistentPool] = None
_SHARED_LOCK = threading.Lock()


def get_shared_pool(workers: int) -> PersistentPool:
    """The process-wide pool, grown to at least ``workers`` targets.

    Created on first use and reused by every campaign (serve, loadgen,
    netlint, benchmarks) until :func:`shutdown_shared_pool`.  A broken
    pool is replaced transparently.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None or _SHARED.closed:
            _SHARED = PersistentPool(workers)
        else:
            _SHARED.grow(workers)
        return _SHARED


def warm_pool(workers: int) -> PersistentPool:
    """Pre-fork the shared pool's workers (call before starting threads)."""
    pool = get_shared_pool(workers)
    pool.ensure_workers(workers)
    return pool


def shutdown_shared_pool() -> None:
    """Close the shared pool if one exists (idempotent)."""
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is not None:
            _SHARED.close()
            _SHARED = None


atexit.register(shutdown_shared_pool)


__all__ = [
    "PersistentPool",
    "PoolBrokenError",
    "PoolTaskError",
    "fork_available",
    "get_shared_pool",
    "shutdown_shared_pool",
    "warm_pool",
]
