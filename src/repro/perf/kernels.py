"""Batch kernels over flattened ``IntervalSet`` encodings.

The region algebras spend their §3/§5 hot loops asking the same three
questions about *many* interval-set pairs at once: is the intersection
empty, is one set contained in the other, and what is the intersection
or difference.  Asked one pair at a time those questions pay per-call
Python overhead (memo-key hashing, ``Interval`` object churn) that
dwarfs the comparisons themselves.  This module batches them:

* :func:`encode` flattens a sequence of canonical
  :class:`~repro.netaddr.intervals.IntervalSet` values into a
  :class:`FlatSets` — contiguous sorted-endpoint ``array('I')`` (or
  ``array('q')`` when endpoints exceed 32 bits) arrays plus per-set
  offsets and bounding boxes;
* :func:`disjoint_matrix` / :func:`subset_matrix` answer the pairwise
  questions for whole cross products, deciding almost every cell from
  the bounding boxes and falling back to an exact two-pointer merge
  sweep over the flat arrays only for multi-interval sets whose boxes
  overlap;
* :func:`intersect_many` / :func:`subtract_many` compute element-wise
  set algebra without constructing intermediate ``Interval`` objects.

Every kernel is **exactly** equivalent to the corresponding
``IntervalSet`` operation — the differential suite in
``tests/perf/test_kernels.py`` pins that over randomized-but-seeded
populations, with and without the numpy fast path.

Backends: when numpy is importable the matrix kernels vectorize the
bounding-box passes; otherwise a pure-stdlib fallback runs the same
logic with early-exit loops.  ``REPRO_KERNELS=numpy|py`` forces one
backend (``numpy`` raises :class:`KernelBackendError` when numpy is
missing), and :func:`use_backend` scopes a forced backend for tests.
"""

from __future__ import annotations

import contextlib
import os
from array import array
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.netaddr.intervals import EMPTY_SET, Interval, IntervalSet

try:  # pragma: no cover - exercised via both-backend test parametrization
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-less environments (CI)
    _numpy = None  # type: ignore[assignment]

_np: Any = _numpy

#: A boolean matrix as rows of 0/1 bytes: ``matrix[i][j]``.
Matrix = List[bytearray]


class KernelBackendError(RuntimeError):
    """Raised when ``REPRO_KERNELS`` requests an unavailable backend."""


_FORCED: Optional[str] = None

_VALID_BACKENDS = ("numpy", "py")


def available_backends() -> Tuple[str, ...]:
    """The backends this process can run (``py`` is always available)."""
    return _VALID_BACKENDS if _np is not None else ("py",)


def active_backend() -> str:
    """The backend the kernels dispatch to right now.

    Resolution order: :func:`use_backend` override, then the
    ``REPRO_KERNELS`` environment variable (``numpy`` or ``py``), then
    numpy-if-importable.
    """
    if _FORCED is not None:
        return _FORCED
    env = os.environ.get("REPRO_KERNELS", "").strip()
    if env:
        if env not in _VALID_BACKENDS:
            raise KernelBackendError(
                f"unknown REPRO_KERNELS value {env!r}; use 'numpy' or 'py'"
            )
        if env == "numpy" and _np is None:
            raise KernelBackendError(
                "REPRO_KERNELS=numpy but numpy is not importable"
            )
        return env
    return "numpy" if _np is not None else "py"


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Force a backend for the extent of the block (test hook)."""
    global _FORCED
    if name not in _VALID_BACKENDS:
        raise KernelBackendError(f"unknown backend {name!r}")
    if name == "numpy" and _np is None:
        raise KernelBackendError("numpy backend requested but not importable")
    previous = _FORCED
    _FORCED = name
    try:
        yield
    finally:
        _FORCED = previous


# ---------------------------------------------------------------- encoding


class FlatSets:
    """N interval sets as flat sorted-endpoint arrays.

    ``los[offsets[i]:offsets[i+1]]`` / ``his[...]`` are set *i*'s
    interval endpoints; ``box_lo[i]``/``box_hi[i]`` is its bounding box
    (``(1, 0)`` for the empty set, so the box itself reads as empty).
    The typecode is ``'I'`` when every endpoint fits an unsigned 32-bit
    word (addresses, ports, protocols — the practical universes) and
    ``'q'`` otherwise.
    """

    __slots__ = ("offsets", "los", "his", "box_lo", "box_hi", "_arrays")

    def __init__(
        self,
        offsets: "array[int]",
        los: "array[int]",
        his: "array[int]",
        box_lo: "array[int]",
        box_hi: "array[int]",
    ) -> None:
        self.offsets = offsets
        self.los = los
        self.his = his
        self.box_lo = box_lo
        self.box_hi = box_hi
        self._arrays: Optional[Tuple[Any, Any, Any, Any]] = None

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def size(self, index: int) -> int:
        """Number of intervals in set ``index``."""
        return self.offsets[index + 1] - self.offsets[index]

    def to_bytes(self) -> bytes:
        """The endpoint arrays as one bytes blob (diagnostics, hashing)."""
        return self.offsets.tobytes() + self.los.tobytes() + self.his.tobytes()

    def decode(self, index: int) -> IntervalSet:
        """Set ``index`` back as a canonical :class:`IntervalSet`."""
        lo, hi = self.offsets[index], self.offsets[index + 1]
        return IntervalSet._from_canonical(
            tuple(
                Interval(self.los[k], self.his[k]) for k in range(lo, hi)
            )
        )

    def numpy_arrays(self) -> Tuple[Any, Any, Any, Any]:
        """``(box_lo, box_hi, sizes, offsets)`` as cached numpy arrays."""
        if self._arrays is None:
            box_lo = _np.frombuffer(self.box_lo, dtype=_np.int64)
            box_hi = _np.frombuffer(self.box_hi, dtype=_np.int64)
            offsets = _np.frombuffer(self.offsets, dtype=_np.uint32).astype(
                _np.int64
            )
            sizes = offsets[1:] - offsets[:-1]
            self._arrays = (box_lo, box_hi, sizes, offsets)
        return self._arrays


def encode(sets: Sequence[IntervalSet]) -> FlatSets:
    """Flatten canonical interval sets into a :class:`FlatSets`."""
    offsets = array("I", [0])
    los: List[int] = []
    his: List[int] = []
    box_lo = array("q")
    box_hi = array("q")
    total = 0
    unsigned = True
    for value in sets:
        intervals = value.intervals
        total += len(intervals)
        offsets.append(total)
        for iv in intervals:
            los.append(iv.lo)
            his.append(iv.hi)
            if iv.lo < 0 or iv.hi > 0xFFFFFFFF:
                unsigned = False
        if intervals:
            box_lo.append(intervals[0].lo)
            box_hi.append(intervals[-1].hi)
        else:
            box_lo.append(1)
            box_hi.append(0)
    code = "I" if unsigned else "q"
    return FlatSets(offsets, array(code, los), array(code, his), box_lo, box_hi)


# ------------------------------------------------------- pairwise sweeps


def _pair_disjoint(a: FlatSets, i: int, b: FlatSets, j: int) -> bool:
    """Exact ``a[i].intersect(b[j]).is_empty()`` over the flat arrays."""
    ka, ea = a.offsets[i], a.offsets[i + 1]
    kb, eb = b.offsets[j], b.offsets[j + 1]
    alos, ahis, blos, bhis = a.los, a.his, b.los, b.his
    while ka < ea and kb < eb:
        if ahis[ka] < blos[kb]:
            ka += 1
        elif bhis[kb] < alos[ka]:
            kb += 1
        else:
            return False
    return True


def _pair_subset(a: FlatSets, i: int, b: FlatSets, j: int) -> bool:
    """Exact ``a[i].is_subset_of(b[j])`` over the flat arrays.

    Canonical sets are disjoint and non-adjacent, so an interval of
    ``a[i]`` is covered iff a *single* interval of ``b[j]`` contains it.
    """
    ka, ea = a.offsets[i], a.offsets[i + 1]
    kb, eb = b.offsets[j], b.offsets[j + 1]
    alos, ahis, blos, bhis = a.los, a.his, b.los, b.his
    while ka < ea:
        lo, hi = alos[ka], ahis[ka]
        while kb < eb and bhis[kb] < lo:
            kb += 1
        if kb >= eb or blos[kb] > lo or bhis[kb] < hi:
            return False
        ka += 1
    return True


def _pair_intersect(
    a: FlatSets, i: int, b: FlatSets, j: int
) -> Tuple[Interval, ...]:
    """Canonical intervals of ``a[i] & b[j]`` via one merge sweep."""
    ka, ea = a.offsets[i], a.offsets[i + 1]
    kb, eb = b.offsets[j], b.offsets[j + 1]
    alos, ahis, blos, bhis = a.los, a.his, b.los, b.his
    out: List[Interval] = []
    while ka < ea and kb < eb:
        lo = max(alos[ka], blos[kb])
        hi = min(ahis[ka], bhis[kb])
        if lo <= hi:
            out.append(Interval(lo, hi))
        if ahis[ka] < bhis[kb]:
            ka += 1
        else:
            kb += 1
    return tuple(out)


def _pair_subtract(
    a: FlatSets, i: int, b: FlatSets, j: int
) -> Tuple[Interval, ...]:
    """Canonical intervals of ``a[i] - b[j]`` via one merge sweep."""
    ka, ea = a.offsets[i], a.offsets[i + 1]
    kb, eb = b.offsets[j], b.offsets[j + 1]
    alos, ahis, blos, bhis = a.los, a.his, b.los, b.his
    out: List[Interval] = []
    while ka < ea:
        cursor = alos[ka]
        hi = ahis[ka]
        while kb < eb and bhis[kb] < cursor:
            kb += 1
        kj = kb
        while kj < eb and blos[kj] <= hi:
            if blos[kj] > cursor:
                out.append(Interval(cursor, blos[kj] - 1))
            cursor = max(cursor, bhis[kj] + 1)
            if cursor > hi:
                break
            kj += 1
        if cursor <= hi:
            out.append(Interval(cursor, hi))
        ka += 1
    return tuple(out)


# ------------------------------------------------------------ the kernels


def disjoint_matrix(a: FlatSets, b: FlatSets) -> Matrix:
    """Exact pairwise emptiness: ``out[i][j] == a[i].intersect(b[j]).is_empty()``.

    Bounding boxes decide disjointness soundly; box-overlapping pairs of
    *single-interval* sets are definitely not disjoint (closed intervals
    intersect iff their boxes do); only multi-interval pairs with
    overlapping boxes run the per-pair merge sweep.
    """
    if active_backend() == "numpy":
        return _disjoint_matrix_np(a, b)
    return _disjoint_matrix_py(a, b)


def _disjoint_matrix_py(a: FlatSets, b: FlatSets) -> Matrix:
    n_b = len(b)
    out: Matrix = []
    for i in range(len(a)):
        row = bytearray(n_b)
        a_size = a.size(i)
        if a_size == 0:
            for j in range(n_b):
                row[j] = 1
            out.append(row)
            continue
        a_lo, a_hi = a.box_lo[i], a.box_hi[i]
        for j in range(n_b):
            b_size = b.size(j)
            if b_size == 0 or a_hi < b.box_lo[j] or b.box_hi[j] < a_lo:
                row[j] = 1
            elif a_size == 1 and b_size == 1:
                row[j] = 0
            else:
                row[j] = 1 if _pair_disjoint(a, i, b, j) else 0
        out.append(row)
    return out


def _disjoint_matrix_np(a: FlatSets, b: FlatSets) -> Matrix:
    a_lo, a_hi, a_sizes, _ = a.numpy_arrays()
    b_lo, b_hi, b_sizes, _ = b.numpy_arrays()
    box_disjoint = (a_hi[:, None] < b_lo[None, :]) | (
        b_hi[None, :] < a_lo[:, None]
    )
    empty = (a_sizes[:, None] == 0) | (b_sizes[None, :] == 0)
    disjoint = box_disjoint | empty
    both_single = (a_sizes[:, None] == 1) & (b_sizes[None, :] == 1)
    undecided = ~disjoint & ~both_single
    result = disjoint.astype(_np.uint8)
    for i, j in _np.argwhere(undecided):
        if _pair_disjoint(a, int(i), b, int(j)):
            result[i, j] = 1
    return [bytearray(result[i].tobytes()) for i in range(len(a))]


def subset_matrix(a: FlatSets, b: FlatSets) -> Matrix:
    """Exact pairwise containment: ``out[i][j] == a[i].is_subset_of(b[j])``.

    The empty set is a subset of everything; a nonempty set whose box
    pokes outside the target's box is not contained; a box inside a
    *single-interval* target is definitely contained; the rest run the
    per-pair merge sweep.
    """
    if active_backend() == "numpy":
        return _subset_matrix_np(a, b)
    return _subset_matrix_py(a, b)


def _subset_matrix_py(a: FlatSets, b: FlatSets) -> Matrix:
    n_b = len(b)
    out: Matrix = []
    for i in range(len(a)):
        row = bytearray(n_b)
        a_size = a.size(i)
        if a_size == 0:
            for j in range(n_b):
                row[j] = 1
            out.append(row)
            continue
        a_lo, a_hi = a.box_lo[i], a.box_hi[i]
        for j in range(n_b):
            b_size = b.size(j)
            if b_size == 0 or a_lo < b.box_lo[j] or a_hi > b.box_hi[j]:
                row[j] = 0
            elif b_size == 1:
                row[j] = 1
            else:
                row[j] = 1 if _pair_subset(a, i, b, j) else 0
        out.append(row)
    return out


def _subset_matrix_np(a: FlatSets, b: FlatSets) -> Matrix:
    a_lo, a_hi, a_sizes, _ = a.numpy_arrays()
    b_lo, b_hi, b_sizes, _ = b.numpy_arrays()
    a_empty = a_sizes[:, None] == 0
    box_inside = (
        (a_lo[:, None] >= b_lo[None, :])
        & (a_hi[:, None] <= b_hi[None, :])
        & ~a_empty
        & (b_sizes[None, :] > 0)
    )
    decided_yes = a_empty | (box_inside & (b_sizes[None, :] == 1))
    undecided = box_inside & (b_sizes[None, :] > 1)
    result = decided_yes.astype(_np.uint8)
    for i, j in _np.argwhere(undecided):
        if _pair_subset(a, int(i), b, int(j)):
            result[i, j] = 1
    return [bytearray(result[i].tobytes()) for i in range(len(a))]


def contains_vector(sets: FlatSets, value: int) -> List[bool]:
    """Exact per-set membership: ``out[i] == sets[i].contains(value)``."""
    out: List[bool] = []
    los, his = sets.los, sets.his
    for i in range(len(sets)):
        lo, hi = sets.offsets[i], sets.offsets[i + 1] - 1
        found = False
        while lo <= hi:
            mid = (lo + hi) // 2
            if value < los[mid]:
                hi = mid - 1
            elif value > his[mid]:
                lo = mid + 1
            else:
                found = True
                break
        out.append(found)
    return out


def intersect_many(a: FlatSets, b: FlatSets) -> List[IntervalSet]:
    """Element-wise ``a[i].intersect(b[i])`` (lengths must match)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    skip = _box_disjoint_vector(a, b)
    out: List[IntervalSet] = []
    for i in range(len(a)):
        if skip[i]:
            out.append(EMPTY_SET)
        else:
            out.append(
                IntervalSet._from_canonical(_pair_intersect(a, i, b, i))
            )
    return out


def subtract_many(a: FlatSets, b: FlatSets) -> List[IntervalSet]:
    """Element-wise ``a[i].subtract(b[i])`` (lengths must match)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    skip = _box_disjoint_vector(a, b)
    out: List[IntervalSet] = []
    for i in range(len(a)):
        if skip[i]:
            # Disjoint operands: the difference is a[i] unchanged.
            out.append(a.decode(i))
        else:
            out.append(
                IntervalSet._from_canonical(_pair_subtract(a, i, b, i))
            )
    return out


def _box_disjoint_vector(a: FlatSets, b: FlatSets) -> List[bool]:
    """Element-wise sound disjointness from the bounding boxes alone."""
    if active_backend() == "numpy" and len(a) >= 64:
        a_lo, a_hi, a_sizes, _ = a.numpy_arrays()
        b_lo, b_hi, b_sizes, _ = b.numpy_arrays()
        flags = (
            (a_hi < b_lo)
            | (b_hi < a_lo)
            | (a_sizes == 0)
            | (b_sizes == 0)
        )
        return [bool(flag) for flag in flags]
    return [
        a.size(i) == 0
        or b.size(i) == 0
        or a.box_hi[i] < b.box_lo[i]
        or b.box_hi[i] < a.box_lo[i]
        for i in range(len(a))
    ]


__all__ = [
    "FlatSets",
    "KernelBackendError",
    "Matrix",
    "active_backend",
    "available_backends",
    "contains_vector",
    "disjoint_matrix",
    "encode",
    "intersect_many",
    "subset_matrix",
    "subtract_many",
    "use_backend",
]
