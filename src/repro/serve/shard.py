"""Horizontal sharding: a consistent-hash router over serve processes.

One process running a :class:`~repro.serve.session.SessionManager` caps
the tier at a single Python interpreter (one GIL, one failure domain).
This module scales *out* instead of up, without changing a single
serving semantic:

* :class:`HashRing` — a consistent-hash ring over session ids.  Hashing
  is ``sha256``-based and therefore identical across processes and
  Python versions (no ``PYTHONHASHSEED`` dependence); each shard owns
  ``replicas`` virtual nodes so session load spreads evenly and a
  resize moves only the sessions whose arc changed.
* :class:`ShardProcess` — one ``clarify serve`` subprocess speaking the
  existing JSONL stdin/stdout protocol, with a ``tag`` field added so
  replies may arrive out of order (the shard pipelines tagged requests
  through its worker pool instead of handling one line at a time).
  Every shard owns a :class:`~repro.serve.store.DurableSessionStore`
  directory, so a ``SIGKILL`` loses nothing that reached a journal.
* :class:`ShardedCluster` — the thin router: routes ``open`` /
  ``request`` / ``close`` by ring position, stamps every request with a
  router-assigned per-session sequence number and a minted trace id
  (both cross the process hop), and applies **router-side admission
  control**: per-shard and global high-water marks with an EWMA
  retry-after, mirroring :class:`~repro.serve.service.ClarifyService`'s
  single-process policy one level up.

Crash recovery is first-class: :meth:`ShardedCluster.kill_shard` is a
real ``SIGKILL``, and :meth:`ShardedCluster.restart_shard` respawns the
shard with ``--restore`` — the new process replays its journals,
reconstructs every session bit-exactly
(:func:`repro.serve.store.rebuild_session`), and the router re-sends
every unanswered command in original order.  Already-resolved sequence
numbers are answered from the journal
(:meth:`~repro.serve.session.ManagedSession.replayed_response`), so a
request is applied exactly once no matter where the crash landed.

The proof obligation is the same differential the serving layer has
used since the pool was introduced: :func:`check_shard_identity` runs
the identical seeded campaign serial, pooled, sharded, and
sharded-with-a-kill, and requires all four outcome fingerprints to be
byte-identical (``clarify loadgen --check-shard-identity``, enforced by
the ``shard`` CI job).
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.errors import ClarifyError
from repro.obs import telemetry
from repro.serve.loadgen import _fingerprint, generate_workload
from repro.serve.service import AdmissionError

#: Seed for the router's service-time EWMA before any reply has landed.
_EWMA_SEED_S = 0.02

#: Virtual nodes per shard; enough that a 64-session campaign spreads
#: across every shard of a small cluster.
DEFAULT_REPLICAS = 64


class ClusterError(ClarifyError):
    """A shard process died or misbehaved outside a requested kill."""


class HashRing:
    """Consistent hashing of session ids onto shard indices.

    Deterministic across processes: ring points are the first 16 hex
    digits of ``sha256("shard-<i>:<replica>")`` and lookups hash the
    session id the same way, so every router instance — and every test
    — agrees on the placement.
    """

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.shards = shards
        self.replicas = replicas
        points: List[tuple] = []
        for shard in range(shards):
            for replica in range(replicas):
                token = f"shard-{shard}:{replica}"
                points.append((self._hash(token), shard))
        points.sort()
        self._points = points

    @staticmethod
    def _hash(key: str) -> int:
        return int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:16], 16)

    def shard_for(self, session_id: str) -> int:
        """The shard owning ``session_id`` (first point clockwise)."""
        key = self._hash(session_id)
        index = bisect.bisect_left(self._points, (key, -1))
        if index == len(self._points):
            index = 0
        return int(self._points[index][1])

    def assignments(self, session_ids: List[str]) -> Dict[str, int]:
        """Placement for a whole workload, session id → shard index."""
        return {sid: self.shard_for(sid) for sid in session_ids}


class PendingCall:
    """One in-flight JSONL command awaiting its tagged reply."""

    def __init__(self, command: Dict[str, Any]) -> None:
        self.command = command
        self._event = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None

    def resolve(self, payload: Dict[str, Any]) -> None:
        self.payload = payload
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The reply payload, or None if ``timeout`` expires first."""
        if not self._event.wait(timeout):
            return None
        return self.payload

    @property
    def done(self) -> bool:
        return self._event.is_set()


class ShardProcess:
    """One ``clarify serve`` subprocess plus its pipe bookkeeping.

    Commands are written as JSONL with a unique ``tag``; a reader
    thread pairs each tagged reply back to its :class:`PendingCall`.
    After :meth:`kill` + :meth:`restart`, every still-unanswered
    command is re-sent in original order — the shard's journal-backed
    dedupe makes the re-sends idempotent.
    """

    def __init__(
        self,
        index: int,
        store_dir: str,
        workers: int = 4,
        queue_limit: int = 128,
        max_attempts: int = 3,
        backend: str = "simulated",
    ) -> None:
        self.index = index
        self.store_dir = store_dir
        self.workers = workers
        self.queue_limit = queue_limit
        self.max_attempts = max_attempts
        self.backend = backend
        self.restarts = 0
        self.on_reply: Optional[Any] = None
        self._proc: Optional["subprocess.Popen[str]"] = None
        self._reader: Optional[threading.Thread] = None
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[str, PendingCall] = {}
        self._order: List[str] = []
        self._tags = 0

    # ----------------------------------------------------------- lifecycle

    def _argv(self, restore: bool) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--workers",
            str(self.workers),
            "--queue-limit",
            str(self.queue_limit),
            "--max-attempts",
            str(self.max_attempts),
            "--backend",
            self.backend,
            "--store-dir",
            self.store_dir,
        ]
        if restore:
            argv.append("--restore")
        return argv

    def spawn(self, restore: bool = False) -> None:
        """Start (or re-start) the subprocess and its reply reader."""
        env = dict(os.environ)
        # Telemetry endpoints are per-process resources; N shards must
        # not race for one metrics port or interleave one event log.
        env.pop("CLARIFY_METRICS_PORT", None)
        env.pop("CLARIFY_EVENT_LOG", None)
        self._proc = subprocess.Popen(
            self._argv(restore),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(self._proc,),
            name=f"shard-{self.index}-reader",
            daemon=True,
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — no shutdown hooks run; journals are the survivors."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait()

    def restart(self) -> None:
        """Respawn with ``--restore`` and re-send unanswered commands."""
        self.restarts += 1
        self.spawn(restore=True)
        with self._pending_lock:
            self._order = [t for t in self._order if t in self._pending]
            commands = [self._pending[t].command for t in self._order]
        for command in commands:
            self._write(command)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Ask the serve loop to quit; escalate to a kill on timeout."""
        proc = self._proc
        if proc is None or proc.poll() is not None:
            return
        try:
            self._write({"op": "quit", "tag": "quit"})
        except (ClusterError, OSError):
            pass
        try:
            proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    # ------------------------------------------------------------- the pipe

    def send(self, command: Dict[str, Any]) -> PendingCall:
        """Queue a tagged command; the reply resolves the returned call."""
        with self._pending_lock:
            self._tags += 1
            tag = f"s{self.index}-{self._tags}"
            tagged = dict(command)
            tagged["tag"] = tag
            call = PendingCall(tagged)
            self._pending[tag] = call
            self._order.append(tag)
        self._write(tagged)
        return call

    def pending_count(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def _write(self, command: Dict[str, Any]) -> None:
        with self._write_lock:
            proc = self._proc
            if proc is None or proc.stdin is None or proc.poll() is not None:
                raise ClusterError(f"shard {self.index} is not running")
            try:
                proc.stdin.write(json.dumps(command, sort_keys=True) + "\n")
                proc.stdin.flush()
            except (BrokenPipeError, OSError) as exc:
                raise ClusterError(
                    f"shard {self.index} pipe broke: {exc}"
                ) from exc

    def _read_loop(self, proc: "subprocess.Popen[str]") -> None:
        stdout = proc.stdout
        if stdout is None:  # pragma: no cover - Popen always pipes it
            return
        for line in stdout:
            try:
                payload = json.loads(line)
            except ValueError:
                continue  # a torn line from a kill mid-write
            if not isinstance(payload, dict):
                continue
            tag = payload.get("tag")
            if tag is None:
                continue
            with self._pending_lock:
                call = self._pending.pop(tag, None)
            if call is None:
                continue
            hook = self.on_reply
            if hook is not None:
                hook(self.index, payload)
            call.resolve(payload)


class ShardedCluster:
    """The router: ring placement + admission + crash recovery.

    ``high_water`` bounds each shard's in-flight requests and
    ``global_high_water`` (default ``shards * high_water``) bounds the
    cluster's; breaching either raises
    :class:`~repro.serve.service.AdmissionError` with an EWMA-estimated
    ``retry_after_s``, exactly like the in-process service — the shard
    processes run with twice the per-shard mark so router admission is
    the binding constraint.
    """

    def __init__(
        self,
        shards: int = 2,
        workers_per_shard: int = 4,
        store_root: Optional[str] = None,
        high_water: int = 32,
        global_high_water: Optional[int] = None,
        max_attempts: int = 3,
        backend: str = "simulated",
        deadline_s: Optional[float] = None,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if high_water < 1:
            raise ValueError("high_water must be at least 1")
        self.ring = HashRing(shards, replicas=replicas)
        self.store_root = store_root or tempfile.mkdtemp(
            prefix="clarify-shards-"
        )
        self.high_water = high_water
        self.global_high_water = (
            global_high_water
            if global_high_water is not None
            else shards * high_water
        )
        self.deadline_s = deadline_s
        self.procs = [
            ShardProcess(
                index,
                store_dir=os.path.join(self.store_root, f"shard-{index:02d}"),
                workers=workers_per_shard,
                queue_limit=max(2 * high_water, 8),
                max_attempts=max_attempts,
                backend=backend,
            )
            for index in range(shards)
        ]
        for proc in self.procs:
            proc.on_reply = self._reply_hook
        self._lock = threading.Lock()
        self._inflight = [0] * shards
        self._ewma_service_s = _EWMA_SEED_S
        self._session_shard: Dict[str, int] = {}
        self._session_seq: Dict[str, int] = {}
        #: Router-side counters, surfaced in the campaign report.
        self.rejected = 0
        self.kills = 0
        self.restored_sessions = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "ShardedCluster":
        for proc in self.procs:
            proc.spawn(restore=False)
        return self

    def stop(self) -> None:
        for proc in self.procs:
            proc.stop()

    def __enter__(self) -> "ShardedCluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -------------------------------------------------------------- routing

    def shard_of(self, session_id: str) -> int:
        return self.ring.shard_for(session_id)

    def open(
        self, session_id: str, config_text: str = "", timeout_s: float = 30.0
    ) -> Dict[str, Any]:
        """Open a session on its ring-assigned shard (synchronous)."""
        shard = self.shard_of(session_id)
        call = self.procs[shard].send(
            {
                "op": "open",
                "session": session_id,
                "config": config_text,
                "idempotent": True,
            }
        )
        payload = call.wait(timeout_s)
        if payload is None or not payload.get("ok"):
            raise ClusterError(
                f"open {session_id!r} on shard {shard} failed: {payload!r}"
            )
        with self._lock:
            self._session_shard[session_id] = shard
            self._session_seq.setdefault(session_id, 0)
        return payload

    def close_session(
        self, session_id: str, timeout_s: float = 30.0
    ) -> Dict[str, Any]:
        shard = self.shard_of(session_id)
        call = self.procs[shard].send(
            {"op": "close", "session": session_id}
        )
        payload = call.wait(timeout_s) or {}
        with self._lock:
            self._session_shard.pop(session_id, None)
            self._session_seq.pop(session_id, None)
        return payload

    def _retry_after(self, depth: int) -> float:
        workers = sum(proc.workers for proc in self.procs)
        return max(0.001, depth * self._ewma_service_s / max(1, workers))

    def submit(
        self, session_id: str, intent: str, target: str
    ) -> PendingCall:
        """Route one request, or raise :class:`AdmissionError`.

        The router stamps the request with (a) the session's next
        sequence number, which the shard uses for idempotent replay
        after a restart, and (b) a minted trace id that crosses the
        process hop into the shard's journal and wide events.
        """
        with self._lock:
            shard = self._session_shard.get(session_id)
            if shard is None:
                raise KeyError(f"unknown session {session_id!r}")
            total = sum(self._inflight)
            if (
                self._inflight[shard] >= self.high_water
                or total >= self.global_high_water
            ):
                self.rejected += 1
                raise AdmissionError(
                    self._inflight[shard],
                    self.high_water,
                    self._retry_after(total),
                )
            self._inflight[shard] += 1
            seq = self._session_seq[session_id]
            self._session_seq[session_id] = seq + 1
        trace = telemetry.mint_trace(session_id=session_id)
        try:
            return self.procs[shard].send(
                {
                    "op": "request",
                    "session": session_id,
                    "intent": intent,
                    "target": target,
                    "deadline_s": self.deadline_s,
                    "seq": seq,
                    "request_id": trace.request_id,
                    "trace_id": trace.trace_id,
                }
            )
        except ClusterError:
            with self._lock:
                self._inflight[shard] -= 1
            raise

    def _reply_hook(self, shard: int, payload: Dict[str, Any]) -> None:
        if payload.get("op") != "request":
            return
        latency = float(payload.get("latency_s", 0.0) or 0.0)
        with self._lock:
            self._inflight[shard] -= 1
            self._ewma_service_s = (
                0.9 * self._ewma_service_s + 0.1 * latency
            )

    # ---------------------------------------------------------------- chaos

    def kill_shard(self, index: int) -> None:
        """SIGKILL one shard; its in-flight requests stay pending."""
        self.kills += 1
        self.procs[index].kill()

    def restart_shard(self, index: int, timeout_s: float = 60.0) -> int:
        """Respawn a killed shard; returns how many sessions it restored.

        The new process replays every journal under the shard's store
        directory before serving; the router then re-sends unanswered
        commands in original order (see :meth:`ShardProcess.restart`)
        and verifies via ``stats`` that restoration happened.
        """
        proc = self.procs[index]
        proc.restart()
        stats = proc.send({"op": "stats"}).wait(timeout_s)
        if stats is None or not stats.get("ok"):
            raise ClusterError(
                f"shard {index} did not answer stats after restart"
            )
        restored = int(stats.get("restored", 0))
        self.restored_sessions += restored
        return restored

    def stats(self, timeout_s: float = 30.0) -> List[Dict[str, Any]]:
        """One stats payload per shard, in shard order."""
        calls = [proc.send({"op": "stats"}) for proc in self.procs]
        return [call.wait(timeout_s) or {} for call in calls]


# ------------------------------------------------------------- campaigns


@dataclasses.dataclass
class ShardCampaignReport:
    """What one sharded campaign did, with the identity fingerprint."""

    sessions: int
    requests: int
    shards: int
    workers_per_shard: int
    seed: int
    wall_s: float
    throughput_rps: float
    outcomes: Dict[str, int]
    fingerprint: str
    rejected_submissions: int
    unresolved: int
    kills: int
    restarts: int
    restored_sessions: int
    #: Sessions per shard index, from the ring placement.
    placement: Dict[str, int]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


_OUTCOME_KEY_FIELDS = (
    "session",
    "seq",
    "outcome",
    "position",
    "llm_calls",
    "questions",
    "attempts",
    "overlaps",
    "gate_warnings",
    "config_sha256",
)


def _wire_outcome_key(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A reply payload reduced to the schedule-independent surface.

    Mirrors :meth:`~repro.serve.service.ServeResponse.outcome_key`
    field for field, so sharded fingerprints compare byte-for-byte
    against serial/pooled ones.
    """
    key = {field: payload.get(field) for field in _OUTCOME_KEY_FIELDS}
    key["llm_calls"] = int(key["llm_calls"] or 0)
    key["questions"] = int(key["questions"] or 0)
    key["attempts"] = int(key["attempts"] or 0)
    key["overlaps"] = list(key["overlaps"] or [])
    key["gate_warnings"] = list(key["gate_warnings"] or [])
    key["config_sha256"] = str(key["config_sha256"] or "")
    return key


def run_sharded_loadgen(
    sessions: int = 16,
    requests_per_session: int = 2,
    shards: int = 2,
    workers_per_shard: int = 4,
    seed: int = 2025,
    store_root: Optional[str] = None,
    high_water: int = 32,
    global_high_water: Optional[int] = None,
    max_attempts: int = 3,
    backend: str = "simulated",
    kill_and_restart: bool = False,
    wait_timeout_s: float = 120.0,
) -> ShardCampaignReport:
    """Run the seeded loadgen campaign against a sharded cluster.

    The workload is the exact one :func:`~repro.serve.loadgen.run_loadgen`
    drives in-process (same ``(sessions, rps, seed)`` pure function), so
    the resulting fingerprint is directly comparable.  Admission
    rejections are retried after the advertised backoff, shaping *when*
    work runs but never *whether*.

    With ``kill_and_restart`` the chaos choreography is: submit every
    round but the last, SIGKILL the shard owning the first session once
    at least half of those requests resolved (some may still be in
    flight — their re-sends exercise the idempotent replay path),
    restart it with ``--restore``, then submit the final round against
    the restored sessions.  Divergence anywhere shows up in the
    fingerprint.
    """
    workload = generate_workload(sessions, requests_per_session, seed)
    cluster = ShardedCluster(
        shards=shards,
        workers_per_shard=workers_per_shard,
        store_root=store_root,
        high_water=high_water,
        global_high_water=global_high_water,
        max_attempts=max_attempts,
        backend=backend,
    )
    placement = cluster.ring.assignments(
        [spec.session_id for spec in workload]
    )
    rejected = 0
    pendings: List[PendingCall] = []
    t_start = time.perf_counter()
    with cluster:
        for spec in workload:
            cluster.open(spec.session_id, spec.config_text)

        def submit_round(round_idx: int) -> None:
            nonlocal rejected
            for spec in workload:
                while True:
                    try:
                        pendings.append(
                            cluster.submit(
                                spec.session_id,
                                spec.intents[round_idx],
                                spec.target,
                            )
                        )
                        break
                    except AdmissionError as exc:
                        rejected += 1
                        time.sleep(min(exc.retry_after_s, 0.05))

        chaos_rounds = (
            max(1, requests_per_session - 1)
            if kill_and_restart
            else requests_per_session
        )
        for round_idx in range(chaos_rounds):
            submit_round(round_idx)
        if kill_and_restart:
            target_shard = cluster.shard_of(workload[0].session_id)
            half = len(pendings) // 2
            poll_deadline = time.monotonic() + wait_timeout_s
            while (
                sum(1 for p in pendings if p.done) < half
                and time.monotonic() < poll_deadline
            ):
                time.sleep(0.002)
            cluster.kill_shard(target_shard)
            cluster.restart_shard(target_shard)
            for round_idx in range(chaos_rounds, requests_per_session):
                submit_round(round_idx)
        payloads = [p.wait(wait_timeout_s) for p in pendings]
    wall = time.perf_counter() - t_start

    resolved = [p for p in payloads if p is not None]
    outcomes: Dict[str, int] = {}
    for payload in resolved:
        outcome = str(payload.get("outcome", "unknown"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    return ShardCampaignReport(
        sessions=sessions,
        requests=len(pendings),
        shards=shards,
        workers_per_shard=workers_per_shard,
        seed=seed,
        wall_s=wall,
        throughput_rps=len(resolved) / wall if wall > 0 else 0.0,
        outcomes=dict(sorted(outcomes.items())),
        fingerprint=_fingerprint([_wire_outcome_key(p) for p in resolved]),
        rejected_submissions=rejected,
        unresolved=len(pendings) - len(resolved),
        kills=cluster.kills,
        restarts=sum(proc.restarts for proc in cluster.procs),
        restored_sessions=cluster.restored_sessions,
        placement={
            f"shard-{index:02d}": sum(
                1 for s in placement.values() if s == index
            )
            for index in range(shards)
        },
    )


@dataclasses.dataclass
class ShardIdentity:
    """The four-legged differential: serial, pooled, sharded, chaos."""

    #: The in-process legs (:class:`~repro.serve.loadgen.LoadgenReport`).
    serial: Any
    pooled: Any
    sharded: ShardCampaignReport
    chaos: ShardCampaignReport

    @property
    def identical(self) -> bool:
        return (
            self.serial.fingerprint
            == self.pooled.fingerprint
            == self.sharded.fingerprint
            == self.chaos.fingerprint
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "identical": self.identical,
            "serial_fingerprint": self.serial.fingerprint,
            "pooled_fingerprint": self.pooled.fingerprint,
            "sharded": self.sharded.to_dict(),
            "chaos": self.chaos.to_dict(),
        }


def check_shard_identity(
    sessions: int,
    requests_per_session: int,
    workers: int,
    seed: int,
    shards: int = 2,
    store_root: Optional[str] = None,
    max_attempts: int = 3,
    backend: str = "simulated",
    **kwargs: Any,
) -> ShardIdentity:
    """Serial vs pooled vs sharded vs killed-and-restarted — all equal.

    Extends :func:`~repro.serve.loadgen.check_serial_identity` across
    the process boundary: the same seeded campaign must produce
    byte-identical outcome fingerprints (1) serially in one thread,
    (2) pooled across ``workers`` threads, (3) sharded across
    ``shards`` processes, and (4) sharded with one shard SIGKILLed
    mid-campaign and restored from its journals.  The chaos leg must
    additionally have restarted at least one shard and restored at
    least one session — a kill that recovered nothing would be vacuous.
    """
    from repro.serve.loadgen import run_loadgen

    serial = run_loadgen(
        sessions,
        requests_per_session,
        workers=1,
        seed=seed,
        max_attempts=max_attempts,
        backend=backend,
        **kwargs,
    )
    pooled = run_loadgen(
        sessions,
        requests_per_session,
        workers=workers,
        seed=seed,
        max_attempts=max_attempts,
        backend=backend,
        **kwargs,
    )
    sharded = run_sharded_loadgen(
        sessions,
        requests_per_session,
        shards=shards,
        workers_per_shard=workers,
        seed=seed,
        store_root=(
            os.path.join(store_root, "sharded") if store_root else None
        ),
        max_attempts=max_attempts,
        backend=backend,
    )
    chaos = run_sharded_loadgen(
        sessions,
        requests_per_session,
        shards=shards,
        workers_per_shard=workers,
        seed=seed,
        store_root=os.path.join(store_root, "chaos") if store_root else None,
        max_attempts=max_attempts,
        backend=backend,
        kill_and_restart=True,
    )
    identity = ShardIdentity(
        serial=serial,
        pooled=pooled,
        sharded=sharded,
        chaos=chaos,
    )
    if not identity.identical:
        raise AssertionError(
            "sharded runs diverged from the serial baseline: "
            f"serial {serial.fingerprint} / pooled {pooled.fingerprint} / "
            f"sharded {sharded.fingerprint} / chaos {chaos.fingerprint} "
            f"(chaos outcomes {chaos.outcomes})"
        )
    if chaos.restarts < 1 or chaos.restored_sessions < 1:
        raise AssertionError(
            "the chaos leg did not exercise recovery: "
            f"restarts={chaos.restarts} "
            f"restored_sessions={chaos.restored_sessions}"
        )
    return identity


__all__ = [
    "ClusterError",
    "HashRing",
    "PendingCall",
    "ShardCampaignReport",
    "ShardIdentity",
    "ShardProcess",
    "ShardedCluster",
    "check_shard_identity",
    "run_sharded_loadgen",
]
