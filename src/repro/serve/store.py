"""Durable session state: pluggable stores with journal-replay restore.

The serving layer's sessions live in process memory
(:class:`~repro.serve.session.SessionManager`), which caps the tier at
one process and loses every conversation on a crash.  This module makes
session state *durable* without inventing a second serialization format:
the schema-versioned journal (:mod:`repro.obs.journal`) already records
every decision a session made, and deterministic replay
(:mod:`repro.obs.replay`) already rebuilds a session from that record
with zero LLM calls — so a session store only has to keep (a) a manifest
of which sessions are open and how they were seeded, and (b) each
session's journal stream.

Two implementations share the :class:`SessionStore` interface:

* :class:`InMemorySessionStore` — journals held in memory; snapshot and
  restore work, nothing survives the process.  Useful for tests and as
  the no-disk default.
* :class:`DurableSessionStore` — one directory per manager:
  ``sessions.manifest.jsonl`` (append-only ``open``/``close`` records)
  plus one journal file per session, flushed and fsynced per event via
  :class:`~repro.obs.journal.JournalRecorder`'s write-through sink.

Crash recovery is :func:`rebuild_session`: take the journal's
**complete-cycle prefix** (a SIGKILL can tear at most the final line and
orphan a half-recorded cycle — :func:`complete_prefix` truncates both),
replay the successful cycles to reconstruct the live
:class:`~repro.core.workflow.ClarifySession` (verifying the rebuilt
configuration hash against the recorded ``cycle.end`` hash), and
reconstruct every already-resolved request's
:class:`~repro.serve.service.ServeResponse` purely from the recorded
events (:func:`responses_from_events`), so a restarted shard can answer
re-sent requests idempotently instead of re-running them.  Divergence
anywhere raises :class:`RestoreError` — a restored session is either
bit-exact or refused.

Known limits (documented in ``docs/SERVING.md``): restore assumes the
workload's requests all reached the pipeline (requests that died *in
queue* to a tight deadline consume a sequence number without journaling
a cycle), and sessions using a network-wide gate replay without the
gate's warnings.  The sharded CI gate runs within both bounds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from typing import IO, Any, Dict, List, Optional, Tuple, cast

from repro import obs
from repro.config import parse_config, render_config
from repro.core.disambiguator import DisambiguationMode
from repro.core.errors import ClarifyError
from repro.core.oracle import FirstOptionOracle
from repro.core.workflow import ClarifySession
from repro.obs.journal import (
    JournalEvent,
    JournalRecorder,
    dumps_journal,
    loads_journal,
)
from repro.obs.replay import replay_journal


class RestoreError(ClarifyError):
    """A session could not be rebuilt bit-exactly from its journal."""


@dataclasses.dataclass(frozen=True)
class SessionRecord:
    """How a session was opened — the manifest entry the store persists.

    Everything a fresh :class:`~repro.core.workflow.ClarifySession`
    needs that is not in the journal stream itself (the journal's
    ``cycle.start`` events repeat most of it per cycle, but a session
    that crashed before its first cycle has only this record).
    """

    session_id: str
    config_text: str = ""
    mode: str = "full"
    max_attempts: int = 3
    lint_gate: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SessionRecord":
        return cls(
            session_id=str(raw["session_id"]),
            config_text=str(raw.get("config_text", "")),
            mode=str(raw.get("mode", "full")),
            max_attempts=int(raw.get("max_attempts", 3)),
            lint_gate=bool(raw.get("lint_gate", False)),
        )


@dataclasses.dataclass
class SessionSnapshot:
    """A restorable view of one session: its record + journal prefix.

    ``events`` is always a *validated complete-cycle prefix* (or empty
    when nothing was journaled before the crash); ``dropped_events``
    counts what :func:`complete_prefix` truncated — a torn tail line
    and/or the events of a cycle that never reached ``cycle.end`` /
    ``cycle.error``.
    """

    record: SessionRecord
    events: List[JournalEvent]
    dropped_events: int = 0


@dataclasses.dataclass
class RestoredSession:
    """What :func:`rebuild_session` recovered."""

    record: SessionRecord
    session: ClarifySession
    #: The complete-cycle journal prefix the rebuild was driven from;
    #: seeds the resumed :class:`~repro.obs.journal.JournalRecorder`.
    events: List[JournalEvent]
    #: One reconstructed :class:`~repro.serve.service.ServeResponse`
    #: per already-resolved request, in sequence order.
    responses: List[Any]
    #: Requests this session resolved before the crash (= next seq).
    completed: int
    dropped_events: int = 0


# ------------------------------------------------------- event carpentry


def complete_prefix(
    events: List[JournalEvent],
) -> Tuple[List[JournalEvent], int]:
    """Truncate ``events`` to the last completed cycle boundary.

    Returns ``(prefix, dropped)`` where the prefix ends with the last
    ``cycle.end``/``cycle.error`` event (or holds just the header when
    no cycle ever completed) and ``dropped`` is the number of trailing
    events cut — the half-recorded cycle a crash orphaned.
    """
    keep = 0
    for index, event in enumerate(events):
        if event.type in ("journal.open", "cycle.end", "cycle.error"):
            keep = index + 1
    return list(events[:keep]), len(events) - keep


def split_cycles(
    events: List[JournalEvent],
) -> List[List[JournalEvent]]:
    """Group a journal body into per-cycle runs (header dropped)."""
    cycles: List[List[JournalEvent]] = []
    for event in events:
        if event.type == "journal.open":
            continue
        if event.type == "cycle.start":
            cycles.append([event])
        elif cycles:
            cycles[-1].append(event)
        else:
            raise RestoreError(
                f"journal event {event.seq} ({event.type}) precedes the "
                "first cycle.start"
            )
    return cycles


def _renumbered(events: List[JournalEvent]) -> List[JournalEvent]:
    return [
        dataclasses.replace(event, seq=index)
        for index, event in enumerate(events)
    ]


def responses_from_events(
    session_id: str, events: List[JournalEvent]
) -> List[Any]:
    """Reconstruct each resolved request's response from the journal.

    Purely syntactic — no replay: every cycle maps to exactly one
    :class:`~repro.serve.service.ServeResponse` whose schedule-
    independent ``outcome_key()`` fields all come from recorded events
    (``cycle.end`` report + final config hash for ``applied``;
    ``cycle.error`` type/attempts/questions + the *start* config hash —
    failed cycles never mutate the store — for the failure outcomes).
    Timing fields are zero: latency is not part of the identity surface.
    """
    from repro.serve.service import ServeResponse

    responses: List[Any] = []
    for seq, cycle in enumerate(split_cycles(events)):
        start = cycle[0].data
        end = next((e for e in cycle if e.type == "cycle.end"), None)
        error = next((e for e in cycle if e.type == "cycle.error"), None)
        if end is not None:
            report = dict(end.data.get("report", {}))
            responses.append(
                ServeResponse(
                    session=session_id,
                    seq=seq,
                    outcome="applied",
                    position=report.get("position"),
                    llm_calls=int(report.get("llm_calls", 0)),
                    questions=int(report.get("questions", 0)),
                    attempts=int(report.get("attempts", 0)),
                    overlaps=tuple(report.get("overlaps", ())),
                    gate_warnings=tuple(report.get("gate_warnings", ())),
                    config_sha256=str(end.data.get("config_sha256", "")),
                )
            )
            continue
        if error is None:
            raise RestoreError(
                f"cycle {seq} of session {session_id!r} has neither "
                "cycle.end nor cycle.error (not a complete prefix)"
            )
        kind = str(error.data.get("error", ""))
        message = str(error.data.get("message", ""))
        config_sha256 = str(start.get("config_sha256", ""))
        if kind == "SynthesisPunt":
            responses.append(
                ServeResponse(
                    session=session_id,
                    seq=seq,
                    outcome="needs-clarification",
                    detail=message,
                    attempts=int(error.data.get("attempts", 0)),
                    config_sha256=config_sha256,
                )
            )
        elif kind == "DeadlineExceeded":
            responses.append(
                ServeResponse(
                    session=session_id,
                    seq=seq,
                    outcome="deadline",
                    detail=message,
                    questions=int(error.data.get("questions", 0)),
                    config_sha256=config_sha256,
                )
            )
        else:
            responses.append(
                ServeResponse(
                    session=session_id,
                    seq=seq,
                    outcome="error",
                    detail=f"{kind}: {message}",
                    config_sha256=config_sha256,
                )
            )
    return responses


# ------------------------------------------------------------ rebuilding


def rebuild_session(
    snapshot: SessionSnapshot,
    llm: Optional[Any] = None,
    oracle_factory: Optional[Any] = None,
    netwide_gate_factory: Optional[Any] = None,
) -> RestoredSession:
    """Rebuild a live session from its journal, verifying bit-exactness.

    The *successful* cycles are replayed (failed cycles never mutate
    the store, so they contribute responses but no state); the replay's
    event stream must match the record byte for byte and the rebuilt
    configuration must hash to the last recorded ``cycle.end``
    ``config_sha256`` — anything else raises :class:`RestoreError`.
    The returned session is re-armed with the live ``llm`` and a fresh
    oracle, ready to serve new requests exactly as the pre-crash
    session would have.
    """
    from repro.core.oracle import CountingOracle
    from repro.core.synthesis import SynthesisPipeline
    from repro.llm.simulated import SimulatedLLM
    from repro.llm.transcript import TranscribingClient

    record = snapshot.record
    cycles = split_cycles(snapshot.events)
    successful = [
        cycle
        for cycle in cycles
        if any(event.type == "cycle.end" for event in cycle)
    ]
    reports: List[Any] = []
    if successful:
        header = snapshot.events[0]
        replayable = _renumbered(
            [header] + [event for cycle in successful for event in cycle]
        )
        result = replay_journal(replayable)
        if not result.ok:
            detail = (
                result.divergence.render()
                if result.divergence is not None
                else "unknown divergence"
            )
            raise RestoreError(
                f"session {record.session_id!r} journal replay diverged:\n"
                f"{detail}"
            )
        last_key = successful[-1][0].data.get("session")
        session = result.sessions[last_key]
        reports = list(result.reports)
        last_end = next(
            event
            for event in reversed(successful[-1])
            if event.type == "cycle.end"
        )
        rebuilt_sha = obs.sha256_text(render_config(session.store))
        recorded_sha = last_end.data.get("config_sha256")
        if rebuilt_sha != recorded_sha:
            raise RestoreError(
                f"session {record.session_id!r} rebuilt configuration "
                f"hash {rebuilt_sha} != recorded {recorded_sha}"
            )
    else:
        session = ClarifySession(
            store=parse_config(record.config_text),
            mode=DisambiguationMode(record.mode),
            max_attempts=record.max_attempts,
            lint_gate=record.lint_gate,
        )
    # Re-arm the replayed session for live traffic: fresh transcript
    # counter over the real backend, fresh oracle, and the advisory
    # gates the manager would have given a newly opened session.  Both
    # per-cycle counters (llm_calls, questions) are deltas, so resetting
    # the absolute counts cannot shift future outcomes.
    oracle_builder = oracle_factory or FirstOptionOracle
    session.llm = TranscribingClient(
        llm if llm is not None else SimulatedLLM()
    )
    session.pipeline = SynthesisPipeline(
        session.llm, max_attempts=session.max_attempts
    )
    session.oracle = CountingOracle(oracle_builder())
    if netwide_gate_factory is not None:
        session.netwide_gate = netwide_gate_factory()
    session.history = reports
    session.spec_reviews = len(
        [c for c in successful if c[0].data.get("op") == "request"]
    )
    return RestoredSession(
        record=record,
        session=session,
        events=list(snapshot.events),
        responses=responses_from_events(record.session_id, snapshot.events),
        completed=len(cycles),
        dropped_events=snapshot.dropped_events,
    )


# ----------------------------------------------------------- the stores


class SessionStore:
    """Where a :class:`~repro.serve.session.SessionManager` keeps state.

    The interface is journal-shaped on purpose: ``open`` hands back the
    :class:`~repro.obs.journal.JournalRecorder` the manager activates
    around the session's cycles, so the store sees every event the
    moment it is recorded and needs no second write path.
    """

    def open(self, record: SessionRecord) -> JournalRecorder:
        """Persist ``record`` and return the session's journal."""
        raise NotImplementedError

    def resume(
        self, record: SessionRecord, events: List[JournalEvent]
    ) -> JournalRecorder:
        """Return a journal continuing ``events`` (post-restore)."""
        raise NotImplementedError

    def close(self, session_id: str) -> None:
        """Drop a session from the manifest."""
        raise NotImplementedError

    def records(self) -> List[SessionRecord]:
        """Open sessions, in open order."""
        raise NotImplementedError

    def snapshot(self, session_id: str) -> SessionSnapshot:
        """The session's restorable state as of the last flushed event."""
        raise NotImplementedError


class InMemorySessionStore(SessionStore):
    """Snapshot/restore semantics without a disk: journals in memory."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, SessionRecord] = {}
        self._journals: Dict[str, JournalRecorder] = {}

    def open(self, record: SessionRecord) -> JournalRecorder:
        journal = JournalRecorder()
        with self._lock:
            self._records[record.session_id] = record
            self._journals[record.session_id] = journal
        return journal

    def resume(
        self, record: SessionRecord, events: List[JournalEvent]
    ) -> JournalRecorder:
        journal = (
            JournalRecorder(events=events) if events else JournalRecorder()
        )
        with self._lock:
            self._records[record.session_id] = record
            self._journals[record.session_id] = journal
        return journal

    def close(self, session_id: str) -> None:
        with self._lock:
            self._records.pop(session_id, None)
            self._journals.pop(session_id, None)

    def records(self) -> List[SessionRecord]:
        with self._lock:
            return list(self._records.values())

    def snapshot(self, session_id: str) -> SessionSnapshot:
        with self._lock:
            record = self._records[session_id]
            events = list(self._journals[session_id].events)
        prefix, dropped = complete_prefix(events)
        return SessionSnapshot(
            record=record, events=prefix, dropped_events=dropped
        )


def _session_filename(session_id: str) -> str:
    """A collision-free filesystem name for a session's journal."""
    safe = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in session_id
    )
    digest = hashlib.sha256(session_id.encode("utf-8")).hexdigest()[:8]
    return f"{safe}-{digest}.journal.jsonl"


class _FsyncFile:
    """A line sink that fsyncs on flush, so a SIGKILL tears at most the
    final line — the invariant :func:`complete_prefix` relies on."""

    def __init__(self, path: str) -> None:
        self._handle = open(path, "w")

    def write(self, text: str) -> int:
        return self._handle.write(text)

    def flush(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()


class DurableSessionStore(SessionStore):
    """Journal-backed store surviving process death.

    Layout under ``root``::

        sessions.manifest.jsonl     # append-only open/close records
        <session>-<sha8>.journal.jsonl   # one write-through journal each

    Every journal line is flushed and fsynced as it is recorded, and the
    manifest append happens *before* the journal file is created, so at
    any kill point the directory describes a restorable set of sessions:
    :meth:`records` folds the manifest (a ``close`` tombstone wins) and
    :meth:`snapshot` reads each journal leniently
    (``drop_partial_tail``) before truncating to the complete-cycle
    prefix.
    """

    MANIFEST = "sessions.manifest.jsonl"

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self._sinks: Dict[str, _FsyncFile] = {}
        self._manifest = open(
            os.path.join(root, self.MANIFEST), "a"
        )

    def _append_manifest(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._manifest.write(json.dumps(payload, sort_keys=True) + "\n")
            self._manifest.flush()
            os.fsync(self._manifest.fileno())

    def journal_path(self, session_id: str) -> str:
        return os.path.join(self.root, _session_filename(session_id))

    def _sink(self, session_id: str) -> IO[str]:
        sink = _FsyncFile(self.journal_path(session_id))
        with self._lock:
            previous = self._sinks.pop(session_id, None)
            self._sinks[session_id] = sink
        if previous is not None:
            previous.close()
        return cast(IO[str], sink)

    def open(self, record: SessionRecord) -> JournalRecorder:
        self._append_manifest({"op": "open", "record": record.to_dict()})
        return JournalRecorder(self._sink(record.session_id))

    def resume(
        self, record: SessionRecord, events: List[JournalEvent]
    ) -> JournalRecorder:
        # Rewrite the journal as the validated prefix: the torn tail a
        # crash left behind is dropped on disk, and the resumed file
        # stays byte-identical to a single uninterrupted recording.
        sink = self._sink(record.session_id)
        if events:
            return JournalRecorder(sink, events=events)
        return JournalRecorder(sink)

    def close(self, session_id: str) -> None:
        self._append_manifest({"op": "close", "session_id": session_id})
        with self._lock:
            sink = self._sinks.pop(session_id, None)
        if sink is not None:
            sink.close()

    def records(self) -> List[SessionRecord]:
        path = os.path.join(self.root, self.MANIFEST)
        open_records: Dict[str, SessionRecord] = {}
        if not os.path.exists(path):
            return []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn manifest tail: the entry never took
                if raw.get("op") == "open":
                    record = SessionRecord.from_dict(raw["record"])
                    open_records.pop(record.session_id, None)
                    open_records[record.session_id] = record
                elif raw.get("op") == "close":
                    open_records.pop(str(raw.get("session_id")), None)
        return list(open_records.values())

    def snapshot(self, session_id: str) -> SessionSnapshot:
        record = next(
            (r for r in self.records() if r.session_id == session_id), None
        )
        if record is None:
            raise KeyError(f"unknown session {session_id!r}")
        path = self.journal_path(session_id)
        events: List[JournalEvent] = []
        if os.path.exists(path):
            with open(path) as handle:
                text = handle.read()
            if text.strip():
                events = loads_journal(text, drop_partial_tail=True)
        prefix, dropped = complete_prefix(events)
        return SessionSnapshot(
            record=record, events=prefix, dropped_events=dropped
        )

    def dump(self, session_id: str) -> str:
        """The session's journal prefix as JSONL (diagnostics)."""
        return dumps_journal(self.snapshot(session_id).events)


__all__ = [
    "DurableSessionStore",
    "InMemorySessionStore",
    "RestoreError",
    "RestoredSession",
    "SessionRecord",
    "SessionSnapshot",
    "SessionStore",
    "complete_prefix",
    "rebuild_session",
    "responses_from_events",
    "split_cycles",
]
