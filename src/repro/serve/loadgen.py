"""A deterministic load generator for the Clarify service.

``clarify loadgen`` drives :class:`~repro.serve.service.ClarifyService`
with a seeded, reproducible campaign: a mix of **campus** sessions
(route-map policy edits against a walkthrough-style BGP config) and
**cloud** sessions (ACL rule additions against an edge filter), each
issuing several intents drawn from templates the simulated LLM's intent
grammar (:mod:`repro.llm.intents`) understands.  The parameter spaces
are deliberately small so distinct sessions collide on identical
intents — exercising the :class:`~repro.llm.dedup.DedupClient`
in-flight coalescing path under real concurrency.

Everything about the workload is a pure function of ``seed``, which is
what makes the serial-vs-pooled differential check meaningful: run the
same campaign with one worker and with N workers, fingerprint the
schedule-independent outcome fields, and the fingerprints must match
byte for byte (:func:`check_serial_identity`).

With ``fault_rate > 0`` the upstream LLM is wrapped in a
:class:`~repro.llm.faulty.FaultyLLM` chaos layer.  Fault placement then
depends on global call order, so outcomes are no longer
schedule-independent — the chaos gate instead asserts *liveness and
containment*: every request resolves, no session wedges, and no
``internal-error`` outcomes occur.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.disambiguator import DisambiguationMode
from repro.llm.batching import BatchingClient
from repro.llm.client import LLMClient
from repro.llm.dedup import DedupClient
from repro.llm.faulty import FaultyLLM
from repro.llm.respcache import CachedClient, ResponseCache, cache_safe_of
from repro.llm.router import BackendRouter, build_backend
from repro.obs import slo as slo_mod
from repro.obs import telemetry as tele
from repro.obs.metrics import Histogram
from repro.serve.service import (
    AdmissionError,
    ClarifyService,
    ServeRequest,
    ServeResponse,
    Ticket,
)
from repro.serve.session import SessionManager

#: Campus archetype: the §2 walkthrough configuration (BGP export policy).
CAMPUS_CONFIG = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

CAMPUS_TARGET = "ISP_OUT"

#: Cloud archetype: an edge ACL with one existing allow rule.
CLOUD_CONFIG = """
ip access-list extended EDGE_IN
 10 permit tcp host 1.1.1.1 host 2.2.2.2
"""

CLOUD_TARGET = "EDGE_IN"

#: Small parameter spaces → cross-session intent collisions → dedup hits.
_ASNS = (32, 44, 65, 77)
_LOCAL_PREFS = (100, 200, 300)
_MED_PREFIXES = (100, 120, 140)
_ACL_NETS = (3, 5, 7)
_ACL_PORTS = (22, 443, 8080)


def _campus_intents(rng: random.Random, count: int) -> List[str]:
    intents: List[str] = []
    for _ in range(count):
        kind = rng.randrange(3)
        if kind == 0:
            intents.append(
                "Write a route-map stanza that denies routes originating "
                f"from AS {rng.choice(_ASNS)}."
            )
        elif kind == 1:
            intents.append(
                "Write a route-map stanza that permits routes with "
                f"local-preference {rng.choice(_LOCAL_PREFS)}."
            )
        else:
            octet = rng.choice(_MED_PREFIXES)
            intents.append(
                "Write a route-map stanza that permits routes containing "
                f"the prefix {octet}.0.0.0/16 with mask length less than "
                f"or equal to {rng.randrange(17, 25)} and tagged with the "
                f"community 300:{rng.randrange(1, 4)}. Their MED value "
                f"should be set to {rng.choice((55, 70))}."
            )
    return intents


def _cloud_intents(rng: random.Random, count: int) -> List[str]:
    intents: List[str] = []
    for _ in range(count):
        action = rng.choice(("denies", "permits"))
        net = rng.choice(_ACL_NETS)
        port = rng.choice(_ACL_PORTS)
        intents.append(
            f"Add a rule that {action} tcp traffic from 10.{net}.0.0/16 "
            f"to host 2.2.2.{rng.randrange(2, 6)} on destination port "
            f"{port}."
        )
    return intents


@dataclasses.dataclass(frozen=True)
class SessionSpec:
    """One generated session: its seed config and intent script."""

    session_id: str
    archetype: str
    config_text: str
    target: str
    intents: Tuple[str, ...]


def generate_workload(
    sessions: int, requests_per_session: int = 2, seed: int = 2025
) -> List[SessionSpec]:
    """The campaign is a pure function of ``(sessions, rps, seed)``."""
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    if requests_per_session < 1:
        raise ValueError("requests_per_session must be at least 1")
    specs: List[SessionSpec] = []
    for index in range(sessions):
        rng = random.Random(f"loadgen:{seed}:{index}")
        archetype = "campus" if rng.random() < 0.5 else "cloud"
        if archetype == "campus":
            intents = _campus_intents(rng, requests_per_session)
            config, target = CAMPUS_CONFIG, CAMPUS_TARGET
        else:
            intents = _cloud_intents(rng, requests_per_session)
            config, target = CLOUD_CONFIG, CLOUD_TARGET
        specs.append(
            SessionSpec(
                session_id=f"{archetype}-{index:03d}",
                archetype=archetype,
                config_text=config,
                target=target,
                intents=tuple(intents),
            )
        )
    return specs


class _CountingClient:
    """Counts completions that truly reach the backend.

    The dedup/cache/batch layers each report their own savings; this
    innermost wrapper is the ground truth the cache-effectiveness gate
    compares — how many calls the real (metered, billed) backend served.
    """

    def __init__(self, inner: LLMClient) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self.calls = 0

    @property
    def cache_safe(self) -> bool:
        """Delegates to the wrapped backend (counting adds no impurity)."""
        return cache_safe_of(self._inner)

    def complete(self, system: str, prompt: str) -> str:
        """Count, then complete via the wrapped backend."""
        with self._lock:
            self.calls += 1
        return self._inner.complete(system, prompt)


@dataclasses.dataclass
class LLMStack:
    """The layered shared client a campaign (or ``clarify serve``) uses.

    Layering, outermost first (see ``docs/LLM_BACKENDS.md``)::

        DedupClient → BatchingClient? → CachedClient? → FaultyLLM?
                    → counter → backend (simulated / remote / router)

    ``client`` is what sessions share; the other fields expose each
    layer's counters for the campaign report.
    """

    client: DedupClient
    backend: str
    counting: _CountingClient
    faulty: Optional[FaultyLLM]
    cached: Optional[CachedClient]
    batcher: Optional[BatchingClient]
    router: Optional[BackendRouter]

    @property
    def upstream_calls(self) -> int:
        """Completions that reached the real backend."""
        return self.counting.calls


def build_llm_stack(
    backend: str = "simulated",
    cache_dir: Optional[str] = None,
    batch_window_s: Optional[float] = None,
    fault_rate: float = 0.0,
    seed: int = 0,
    llm_factory: Optional[Callable[[], LLMClient]] = None,
    **remote_kwargs: Any,
) -> LLMStack:
    """Build the shared client stack from serving-layer knobs.

    ``llm_factory`` (tests) overrides ``backend``.  With a
    ``fault_rate`` the chaos layer sits *inside* the cache layer, which
    therefore bypasses itself (corrupted responses are never memoized —
    see :func:`repro.llm.respcache.cache_safe_of`).  ``remote_kwargs``
    are forwarded to :func:`repro.llm.router.build_backend` for specs
    naming the ``remote`` backend (tests inject fake transports).
    """
    base = (
        llm_factory()
        if llm_factory is not None
        else build_backend(backend, **remote_kwargs)
    )
    router = base if isinstance(base, BackendRouter) else None
    counting = _CountingClient(base)
    upstream: LLMClient = counting
    faulty: Optional[FaultyLLM] = None
    if fault_rate > 0.0:
        faulty = FaultyLLM(upstream, error_rate=fault_rate, seed=seed)
        upstream = faulty
    cached: Optional[CachedClient] = None
    if cache_dir is not None:
        cached = CachedClient(upstream, ResponseCache(cache_dir))
        upstream = cached
    batcher: Optional[BatchingClient] = None
    if batch_window_s is not None:
        batcher = BatchingClient(upstream, flush_window_s=batch_window_s)
        upstream = batcher
    return LLMStack(
        client=DedupClient(upstream),
        backend=backend if llm_factory is None else "custom",
        counting=counting,
        faulty=faulty,
        cached=cached,
        batcher=batcher,
        router=router,
    )


@dataclasses.dataclass
class LoadgenReport:
    """What one campaign did, with the identity fingerprint."""

    sessions: int
    requests: int
    workers: int
    seed: int
    fault_rate: float
    wall_s: float
    throughput_rps: float
    outcomes: Dict[str, int]
    latency_quantiles: Dict[str, float]
    queue_wait_quantiles: Dict[str, float]
    fingerprint: str
    rejected_submissions: int
    dedup: Dict[str, int]
    injected_faults: int
    counters: Dict[str, float]
    unresolved: int
    backend: str = "simulated"
    #: Completions that truly reached the backend (the billed calls).
    upstream_llm_calls: int = 0
    cache: Dict[str, int] = dataclasses.field(default_factory=dict)
    batch: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Network-wide quality axis (``--netwide``): gate checks run, gate
    #: warnings raised, and the ``netwide.*`` analyzer counters.
    netwide: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Telemetry axis: wide-event count, the SLO burn-rate report, and
    #: whether every tracked LLM-tier counter resolved to a trace.
    telemetry: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The report as a JSON-serialisable dict."""
        return dataclasses.asdict(self)


def _quantiles(histogram: Histogram) -> Dict[str, float]:
    return {
        "p50": histogram.quantile(0.5) or 0.0,
        "p95": histogram.quantile(0.95) or 0.0,
        "p99": histogram.quantile(0.99) or 0.0,
        "max": float(histogram.max),
    }


def _fingerprint(keys: List[Dict[str, Any]]) -> str:
    canonical = json.dumps(
        sorted(keys, key=lambda k: (k["session"], k["seq"])),
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _trace_coverage(
    recorder: obs.Recorder, events: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Do the run's LLM-tier counters all resolve to a wide event?

    Compares the recorder's global ``llm.*`` totals against the sum of
    the same counters across every wide event.  A shortfall means some
    deltas were emitted with no trace active (e.g. on a background flush
    thread) — reported per counter so the gap is debuggable.
    """
    attributed: Dict[str, float] = {}
    for event in events:
        for name, value in event.get("counters", {}).items():
            attributed[name] = attributed.get(name, 0) + value
    missing: Dict[str, float] = {}
    for name, total in recorder.counters.items():
        if not name.startswith("llm."):
            continue
        shortfall = total - attributed.get(name, 0)
        if shortfall > 0:
            missing[name] = shortfall
    return {
        "complete": not missing,
        "missing": dict(sorted(missing.items())),
    }


def run_loadgen(
    sessions: int = 16,
    requests_per_session: int = 2,
    workers: int = 4,
    seed: int = 2025,
    fault_rate: float = 0.0,
    deadline_s: Optional[float] = None,
    queue_limit: int = 64,
    high_water: Optional[int] = None,
    max_attempts: int = 3,
    wait_timeout_s: float = 120.0,
    llm_factory: Optional[Callable[[], LLMClient]] = None,
    backend: str = "simulated",
    cache_dir: Optional[str] = None,
    batch_window_s: Optional[float] = None,
    netwide: bool = False,
    telemetry: bool = True,
    event_log: Optional[str] = None,
    slo: Optional[slo_mod.SLOConfig] = None,
) -> LoadgenReport:
    """Run one seeded campaign and aggregate the results.

    Admission rejections are retried (after the advertised
    ``retry_after_s``) until accepted, so backpressure shapes *when*
    work runs, never *whether* it runs — a prerequisite for the
    serial-vs-pooled identity check.

    ``backend`` is a :func:`repro.llm.router.build_backend` spec,
    ``cache_dir`` enables the durable response cache, and
    ``batch_window_s`` enables micro-batching (see
    :func:`build_llm_stack` for the layering).  ``netwide`` attaches a
    per-session :class:`~repro.lint.netwide.gate.NetwideGate` (each
    session's edits embedded onto the seeded demo topology's EDGE
    router) and adds the network-wide conflict counters to the report —
    the quality axis alongside the throughput/latency ones.

    ``telemetry`` (on by default) installs a
    :class:`~repro.obs.telemetry.TelemetryHub` for the campaign: the
    report gains a ``telemetry`` block (wide-event count, the SLO
    burn-rate evaluation under ``slo`` or the default objectives, and
    the LLM-counter trace-coverage check), and ``event_log`` streams the
    wide events as JSONL.  Trace ids never enter ``outcome_key``, so the
    identity fingerprint is telemetry-invariant.
    """
    workload = generate_workload(sessions, requests_per_session, seed)
    stack = build_llm_stack(
        backend=backend,
        cache_dir=cache_dir,
        batch_window_s=batch_window_s,
        fault_rate=fault_rate,
        seed=seed,
        llm_factory=llm_factory,
    )
    shared = stack.client
    faulty = stack.faulty

    netwide_gate_factory = None
    if netwide:
        # Imported lazily: the netwide layer pulls in the BGP simulator,
        # which fault-only or cache-only campaigns never need.
        from repro.lint.netwide import NetwideGate, default_contracts, embed_on_edge

        contracts = default_contracts()
        netwide_gate_factory = lambda: NetwideGate(  # noqa: E731
            embed_on_edge, contracts=contracts
        )

    recorder = obs.Recorder()
    hub: Optional[tele.TelemetryHub] = None
    t_start = time.perf_counter()
    with obs.recording(recorder):
        if telemetry:
            hub = tele.install_hub(tele.TelemetryHub(sink=event_log))
        try:
            manager = SessionManager(
                llm=shared,
                mode=DisambiguationMode.FULL,
                max_attempts=max_attempts,
                netwide_gate_factory=netwide_gate_factory,
            )
            for spec in workload:
                manager.open(spec.session_id, config_text=spec.config_text)
            rejected_submissions = 0
            tickets: List[Ticket] = []
            with ClarifyService(
                manager,
                workers=workers,
                queue_limit=queue_limit,
                high_water=high_water,
            ) as service:
                # Round-robin across sessions so concurrent requests
                # overlap across many sessions (and dedup sees
                # simultaneous twins).
                for round_idx in range(requests_per_session):
                    for spec in workload:
                        request = ServeRequest(
                            session=spec.session_id,
                            intent=spec.intents[round_idx],
                            target=spec.target,
                            deadline_s=deadline_s,
                        )
                        while True:
                            try:
                                tickets.append(service.submit(request))
                                break
                            except AdmissionError as exc:
                                rejected_submissions += 1
                                time.sleep(min(exc.retry_after_s, 0.05))
                responses: List[Optional[ServeResponse]] = [
                    t.wait(wait_timeout_s) for t in tickets
                ]
        finally:
            if hub is not None:
                tele.uninstall_hub()
                hub.close()
    wall = time.perf_counter() - t_start

    telemetry_block: Dict[str, Any] = {"enabled": hub is not None}
    if hub is not None:
        slo_report = slo_mod.evaluate(hub.events, slo)
        telemetry_block["wide_events"] = hub.finished
        telemetry_block["slo"] = slo_report.to_dict()
        telemetry_block["trace_coverage"] = _trace_coverage(
            recorder, hub.events
        )

    resolved = [r for r in responses if r is not None]
    unresolved = len(responses) - len(resolved)
    outcomes: Dict[str, int] = {}
    latency = Histogram()
    queue_wait = Histogram()
    for response in resolved:
        outcomes[response.outcome] = outcomes.get(response.outcome, 0) + 1
        latency.observe(response.latency_s)
        queue_wait.observe(response.queue_wait_s)
    return LoadgenReport(
        sessions=sessions,
        requests=len(tickets),
        workers=workers,
        seed=seed,
        fault_rate=fault_rate,
        wall_s=wall,
        throughput_rps=len(resolved) / wall if wall > 0 else 0.0,
        outcomes=dict(sorted(outcomes.items())),
        latency_quantiles=_quantiles(latency),
        queue_wait_quantiles=_quantiles(queue_wait),
        fingerprint=_fingerprint([r.outcome_key() for r in resolved]),
        rejected_submissions=rejected_submissions,
        dedup=shared.stats(),
        injected_faults=faulty.injected_faults if faulty else 0,
        counters={
            name: value
            for name, value in sorted(recorder.counters.items())
            if name.startswith(("serve.", "llm."))
        },
        unresolved=unresolved,
        backend=stack.backend,
        upstream_llm_calls=stack.upstream_calls,
        cache=stack.cached.stats() if stack.cached is not None else {},
        batch=stack.batcher.stats() if stack.batcher is not None else {},
        netwide={
            name: value
            for name, value in sorted(recorder.counters.items())
            if name.startswith(("netwide.", "lint.netwide"))
        },
        telemetry=telemetry_block,
    )


def check_serial_identity(
    sessions: int,
    requests_per_session: int,
    workers: int,
    seed: int,
    **kwargs: Any,
) -> Tuple[LoadgenReport, LoadgenReport]:
    """Run the campaign serially and pooled; raise if outcomes diverge.

    Fault injection and deadlines are schedule-dependent by nature, so
    the identity check always runs fault-free and deadline-free.
    """
    serial = run_loadgen(
        sessions, requests_per_session, workers=1, seed=seed, **kwargs
    )
    pooled = run_loadgen(
        sessions, requests_per_session, workers=workers, seed=seed, **kwargs
    )
    if serial.fingerprint != pooled.fingerprint:
        raise AssertionError(
            "serial and pooled runs diverged: "
            f"{serial.fingerprint} != {pooled.fingerprint} "
            f"(serial outcomes {serial.outcomes}, "
            f"pooled outcomes {pooled.outcomes})"
        )
    return serial, pooled


@dataclasses.dataclass
class CacheEffectiveness:
    """The cached-vs-uncached differential: same outcomes, fewer calls.

    Three runs of the identical seeded campaign: ``uncached`` (no durable
    cache), ``cold`` (fresh cache directory — repeats *within* the run
    hit), and ``warm`` (same directory again — every prompt hits).  The
    gate holds when all three fingerprints are byte-identical and the
    upstream call count strictly drops at each stage.
    """

    uncached: LoadgenReport
    cold: LoadgenReport
    warm: LoadgenReport

    @property
    def identical(self) -> bool:
        """True when every run produced byte-identical outcomes."""
        return (
            self.uncached.fingerprint
            == self.cold.fingerprint
            == self.warm.fingerprint
        )

    def to_dict(self) -> Dict[str, Any]:
        """The before/after call counts BENCH_serve.json records."""
        return {
            "identical_outcomes": self.identical,
            "requests": self.uncached.requests,
            "uncached_upstream_calls": self.uncached.upstream_llm_calls,
            "cold_upstream_calls": self.cold.upstream_llm_calls,
            "warm_upstream_calls": self.warm.upstream_llm_calls,
            "cold_cache": self.cold.cache,
            "warm_cache": self.warm.cache,
            "fingerprint": self.uncached.fingerprint,
        }


def check_cache_effectiveness(
    sessions: int,
    requests_per_session: int,
    workers: int,
    seed: int,
    cache_dir: str,
    **kwargs: Any,
) -> CacheEffectiveness:
    """Run the cached-vs-uncached differential gate; raise on violation.

    Requires a fault-free, deadline-free campaign (chaos bypasses the
    cache by design, and both chaos and deadlines make outcomes
    schedule-dependent).  Asserts that (1) the uncached, cold-cache, and
    warm-cache runs produce byte-identical per-session outcomes and
    (2) the warm run reaches the backend strictly less than the cold
    run, which reaches it no more than the uncached run.
    """
    if kwargs.get("fault_rate") or kwargs.get("deadline_s") is not None:
        raise ValueError(
            "cache effectiveness requires a fault-free, deadline-free "
            "campaign"
        )
    uncached = run_loadgen(
        sessions, requests_per_session, workers=workers, seed=seed, **kwargs
    )
    cold = run_loadgen(
        sessions,
        requests_per_session,
        workers=workers,
        seed=seed,
        cache_dir=cache_dir,
        **kwargs,
    )
    warm = run_loadgen(
        sessions,
        requests_per_session,
        workers=workers,
        seed=seed,
        cache_dir=cache_dir,
        **kwargs,
    )
    result = CacheEffectiveness(uncached=uncached, cold=cold, warm=warm)
    if not result.identical:
        raise AssertionError(
            "cached and uncached runs diverged: "
            f"uncached {uncached.fingerprint} / cold {cold.fingerprint} / "
            f"warm {warm.fingerprint}"
        )
    if cold.upstream_llm_calls > uncached.upstream_llm_calls:
        raise AssertionError(
            f"cold cache increased upstream calls: "
            f"{cold.upstream_llm_calls} > {uncached.upstream_llm_calls}"
        )
    if warm.upstream_llm_calls >= cold.upstream_llm_calls:
        raise AssertionError(
            f"warm cache did not reduce upstream calls: "
            f"{warm.upstream_llm_calls} >= {cold.upstream_llm_calls}"
        )
    return result


@dataclasses.dataclass
class TelemetryOverhead:
    """The telemetry-on vs telemetry-off differential.

    ``repeats`` interleaved pairs of the identical seeded campaign, one
    with the hub installed and one without; the compared p50 is the
    **minimum** across repeats per mode (the least-noisy estimate of the
    achievable latency), and every run must produce the same identity
    fingerprint — telemetry that changed outcomes would be a bug, not an
    overhead.
    """

    p50_off_s: float
    p50_on_s: float
    ratio: float
    bound: float
    repeats: int
    fingerprint: str

    @property
    def ok(self) -> bool:
        """True when the measured p50 regression is within ``bound``."""
        return self.ratio <= self.bound

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        return data


def check_telemetry_overhead(
    sessions: int,
    requests_per_session: int,
    workers: int,
    seed: int,
    repeats: int = 3,
    bound: float = 1.05,
    **kwargs: Any,
) -> TelemetryOverhead:
    """Measure the hub's p50 latency cost; raise if outcomes diverge.

    Requires a fault-free, deadline-free campaign (otherwise outcomes
    are schedule-dependent and the fingerprint cross-check is vacuous).
    The returned report says whether the ``bound`` held; the caller
    (``clarify loadgen --check-telemetry-overhead``) turns that into an
    exit code.
    """
    if kwargs.get("fault_rate") or kwargs.get("deadline_s") is not None:
        raise ValueError(
            "telemetry overhead requires a fault-free, deadline-free "
            "campaign"
        )
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    p50_off: List[float] = []
    p50_on: List[float] = []
    fingerprints = set()
    for _ in range(repeats):
        off = run_loadgen(
            sessions,
            requests_per_session,
            workers=workers,
            seed=seed,
            telemetry=False,
            **kwargs,
        )
        on = run_loadgen(
            sessions,
            requests_per_session,
            workers=workers,
            seed=seed,
            telemetry=True,
            **kwargs,
        )
        p50_off.append(off.latency_quantiles["p50"])
        p50_on.append(on.latency_quantiles["p50"])
        fingerprints.update((off.fingerprint, on.fingerprint))
    if len(fingerprints) != 1:
        raise AssertionError(
            f"telemetry changed campaign outcomes: {sorted(fingerprints)}"
        )
    best_off = min(p50_off)
    best_on = min(p50_on)
    ratio = best_on / best_off if best_off > 0 else 1.0
    return TelemetryOverhead(
        p50_off_s=best_off,
        p50_on_s=best_on,
        ratio=ratio,
        bound=bound,
        repeats=repeats,
        fingerprint=next(iter(fingerprints)),
    )


__all__ = [
    "CAMPUS_CONFIG",
    "CAMPUS_TARGET",
    "CLOUD_CONFIG",
    "CLOUD_TARGET",
    "CacheEffectiveness",
    "LLMStack",
    "LoadgenReport",
    "SessionSpec",
    "TelemetryOverhead",
    "build_llm_stack",
    "check_cache_effectiveness",
    "check_serial_identity",
    "check_telemetry_overhead",
    "generate_workload",
    "run_loadgen",
]
