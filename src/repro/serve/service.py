"""The Clarify service: a bounded work queue over a session pool.

One :class:`ClarifyService` runs many Clarify sessions concurrently:

* **admission control** — the service accepts at most ``queue_limit``
  in-flight requests and starts rejecting once the backlog reaches the
  ``high_water`` mark; a rejection is an :class:`AdmissionError`
  carrying ``retry_after_s`` (estimated from an EWMA of recent service
  times and the current backlog), so well-behaved clients back off
  instead of piling on;
* **deadlines** — every request may carry a time budget
  (``deadline_s``), started at *admission* so queueing time counts; the
  budget is installed ambiently around the cycle
  (:mod:`repro.core.budget`) and polled by the synthesis retry loop and
  the disambiguator's binary search, degrading to a "needs
  clarification"/"deadline" outcome instead of hanging a worker;
* **per-session FIFO** — requests for one session execute strictly in
  admission order (see :class:`~repro.serve.session.ManagedSession`),
  while requests for distinct sessions run in parallel; this is the
  property that makes a pooled run's outcomes identical to a serial
  run's;
* **outcome taxonomy** — every request resolves to exactly one
  :class:`ServeResponse`; pipeline-surfaced failures (punt, deadline,
  clarify errors) are *outcomes*, not exceptions, and only a genuine bug
  produces ``internal-error`` (the chaos CI gate asserts none occur).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.budget import TimeBudget
from repro.core.errors import ClarifyError, DeadlineExceeded, SynthesisPunt
from repro.core.workflow import UpdateReport
from repro.obs import telemetry
from repro.obs.journal import journaling
from repro.obs.telemetry import TraceContext
from repro.serve.session import ManagedSession, SessionManager

#: Outcome kinds a request can resolve to.
OUTCOMES = (
    "applied",
    "needs-clarification",
    "deadline",
    "error",
    "internal-error",
    "rejected",
)

#: Seed for the service-time EWMA before any request has completed.
_EWMA_SEED_S = 0.02


class AdmissionError(ClarifyError):
    """The queue is past its high-water mark; retry after a backoff."""

    def __init__(self, depth: int, high_water: int, retry_after_s: float) -> None:
        super().__init__(
            f"queue at {depth}/{high_water}; retry after {retry_after_s:.3f}s"
        )
        self.depth = depth
        self.high_water = high_water
        self.retry_after_s = retry_after_s
        #: The trace minted for the rejected request, so callers can still
        #: correlate the rejection with its wide event.
        self.trace: Optional[TraceContext] = None


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One Clarify cycle to run against a named session."""

    session: str
    intent: str
    target: str
    #: Wall-clock budget in seconds, started at admission; None = no limit.
    deadline_s: Optional[float] = None
    #: Client-supplied request id echoed on the response; None = minted.
    request_id: Optional[str] = None
    #: Upstream trace id to adopt instead of minting one — the shard
    #: router passes its trace across the process hop so a request's
    #: journal events and wide events correlate end to end.
    trace_id: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ServeResponse:
    """The resolution of one request."""

    session: str
    seq: int
    outcome: str
    detail: str = ""
    position: Optional[int] = None
    llm_calls: int = 0
    questions: int = 0
    attempts: int = 0
    overlaps: Tuple[int, ...] = ()
    gate_warnings: Tuple[str, ...] = ()
    config_sha256: str = ""
    latency_s: float = 0.0
    queue_wait_s: float = 0.0
    retry_after_s: Optional[float] = None
    #: Correlation ids (request_id may be client-supplied).  They are
    #: per-run identities, so they live outside :meth:`outcome_key`.
    request_id: str = ""
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "applied"

    def outcome_key(self) -> Dict[str, Any]:
        """The schedule-independent fields, for differential identity.

        Everything timing-dependent (latency, queue wait, retry-after) is
        excluded; what remains must be byte-identical between a serial
        and a pooled run of the same workload.
        """
        return {
            "session": self.session,
            "seq": self.seq,
            "outcome": self.outcome,
            "position": self.position,
            "llm_calls": self.llm_calls,
            "questions": self.questions,
            "attempts": self.attempts,
            "overlaps": list(self.overlaps),
            "gate_warnings": list(self.gate_warnings),
            "config_sha256": self.config_sha256,
        }

    def to_dict(self) -> Dict[str, Any]:
        data = self.outcome_key()
        data["detail"] = self.detail
        data["latency_s"] = self.latency_s
        data["queue_wait_s"] = self.queue_wait_s
        if self.retry_after_s is not None:
            data["retry_after_s"] = self.retry_after_s
        if self.request_id:
            data["request_id"] = self.request_id
        if self.trace_id:
            data["trace_id"] = self.trace_id
        return data


class Ticket:
    """A handle on an accepted request; resolves to a :class:`ServeResponse`."""

    def __init__(self, request: ServeRequest, seq: int) -> None:
        self.request = request
        self.seq = seq
        self._done = threading.Event()
        self._response: Optional[ServeResponse] = None

    def resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Optional[ServeResponse]:
        """Block until resolution (or ``timeout``); None on timeout."""
        if not self._done.wait(timeout):
            return None
        return self._response

    @property
    def done(self) -> bool:
        return self._done.is_set()


@dataclasses.dataclass
class _WorkItem:
    handle: ManagedSession
    ticket: Ticket
    budget: Optional[TimeBudget]
    admitted_at: float
    trace: TraceContext


_STOP = None


class ClarifyService:
    """A thread pool running Clarify cycles with admission control."""

    def __init__(
        self,
        manager: SessionManager,
        workers: int = 4,
        queue_limit: int = 64,
        high_water: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if high_water is None:
            high_water = queue_limit
        if not 1 <= high_water <= queue_limit:
            raise ValueError(
                f"high_water must be in [1, queue_limit], got {high_water}"
            )
        self.manager = manager
        self.workers = workers
        self.queue_limit = queue_limit
        self.high_water = high_water
        self._queue: "queue.Queue[Union[_WorkItem, None]]" = queue.Queue()
        self._lock = threading.Lock()
        self._pending = 0
        self._ewma_service_s = _EWMA_SEED_S
        self._threads: List[threading.Thread] = []
        self._running = False
        #: Total requests rejected by admission control (monotonic).
        self.rejected = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ClarifyService":
        with self._lock:
            if self._running:
                return self
            self._running = True
        for idx in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"clarify-serve-{idx}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        """Drain the queue, then stop every worker (idempotent)."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    def __enter__(self) -> "ClarifyService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------ admission

    def depth(self) -> int:
        """Requests admitted but not yet completed."""
        with self._lock:
            return self._pending

    def _retry_after(self, depth: int) -> float:
        return max(0.001, depth * self._ewma_service_s / self.workers)

    def submit(self, request: ServeRequest) -> Ticket:
        """Admit one request, or raise :class:`AdmissionError`.

        Every request — admitted or rejected — gets a fresh
        :class:`TraceContext`; a rejection still lands in the latency
        histograms (tagged ``rejected``) and the wide-event log, so
        loadgen quantiles are not survivorship-biased toward requests
        that made it past admission.

        Raises ``KeyError`` for an unknown session and ``RuntimeError``
        when the service is not running.
        """
        started = time.perf_counter()
        trace = telemetry.mint_trace(
            session_id=request.session, request_id=request.request_id
        )
        if request.trace_id is not None:
            trace = dataclasses.replace(trace, trace_id=request.trace_id)
        handle = self.manager.get(request.session)
        if handle is None:
            raise KeyError(f"unknown session {request.session!r}")
        rejection: Optional[AdmissionError] = None
        with self._lock:
            if not self._running:
                raise RuntimeError("service is not running")
            if self._pending >= self.high_water:
                self.rejected += 1
                rejection = AdmissionError(
                    self._pending,
                    self.high_water,
                    self._retry_after(self._pending),
                )
            else:
                self._pending += 1
        if rejection is not None:
            rejection.trace = trace
            elapsed = time.perf_counter() - started
            with telemetry.tracing(trace):
                telemetry.begin_request(trace, seq=-1)
                obs.count("serve.rejected")
                obs.count("serve.outcome.rejected")
                obs.observe("serve.latency", elapsed)
                obs.observe("serve.latency.rejected", elapsed)
                obs.observe("serve.queue_wait", 0.0)
                obs.observe("serve.queue_wait.rejected", 0.0)
                telemetry.finish_request(
                    trace,
                    outcome="rejected",
                    latency_s=elapsed,
                    queue_wait_s=0.0,
                    retry_after_s=rejection.retry_after_s,
                )
            raise rejection
        budget = (
            TimeBudget(request.deadline_s)
            if request.deadline_s is not None
            else None
        )
        with handle.cond:
            seq = handle.submitted_seq
            handle.submitted_seq += 1
        ticket = Ticket(request, seq)
        telemetry.begin_request(trace, seq=seq)
        with telemetry.tracing(trace):
            obs.count("serve.admitted")
        self._queue.put(
            _WorkItem(
                handle=handle,
                ticket=ticket,
                budget=budget,
                admitted_at=time.perf_counter(),
                trace=trace,
            )
        )
        return ticket

    def call(
        self, request: ServeRequest, timeout: Optional[float] = None
    ) -> ServeResponse:
        """Submit and wait; admission rejections become ``rejected`` responses."""
        try:
            ticket = self.submit(request)
        except AdmissionError as exc:
            return ServeResponse(
                session=request.session,
                seq=-1,
                outcome="rejected",
                detail=str(exc),
                retry_after_s=exc.retry_after_s,
                request_id=exc.trace.request_id if exc.trace else "",
                trace_id=exc.trace.trace_id if exc.trace else "",
            )
        response = ticket.wait(timeout)
        if response is None:
            raise TimeoutError(
                f"request for session {request.session!r} still pending "
                f"after {timeout}s"
            )
        return response

    # -------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # the _STOP sentinel
                return
            try:
                self._execute(item)
            finally:
                with self._lock:
                    self._pending -= 1

    def _execute(self, item: _WorkItem) -> None:
        handle = item.handle
        ticket = item.ticket
        with handle.cond:
            while handle.next_seq != ticket.seq:
                handle.cond.wait()
        queue_wait = time.perf_counter() - item.admitted_at
        try:
            with telemetry.tracing(item.trace), obs.span(
                "serve.request", session=handle.session_id, seq=ticket.seq
            ):
                if handle.journal is not None:
                    with journaling(handle.journal):
                        response = self._run_cycle(item, queue_wait)
                else:
                    response = self._run_cycle(item, queue_wait)
        finally:
            with handle.cond:
                handle.next_seq += 1
                handle.completed += 1
                handle.cond.notify_all()
        elapsed = time.perf_counter() - item.admitted_at
        response = dataclasses.replace(
            response,
            latency_s=elapsed,
            queue_wait_s=queue_wait,
            request_id=item.trace.request_id,
            trace_id=item.trace.trace_id,
        )
        with self._lock:
            self._ewma_service_s = (
                0.9 * self._ewma_service_s + 0.1 * (elapsed - queue_wait)
            )
        with telemetry.tracing(item.trace):
            obs.count("serve.requests")
            obs.count(f"serve.outcome.{response.outcome}")
            obs.observe("serve.latency", elapsed)
            obs.observe(f"serve.latency.{response.outcome}", elapsed)
            obs.observe("serve.queue_wait", queue_wait)
            obs.observe(f"serve.queue_wait.{response.outcome}", queue_wait)
            telemetry.finish_request(
                item.trace,
                outcome=response.outcome,
                latency_s=elapsed,
                queue_wait_s=queue_wait,
                attempts=response.attempts,
                llm_calls=response.llm_calls,
                questions=response.questions,
            )
        ticket.resolve(response)

    def _run_cycle(self, item: _WorkItem, queue_wait: float) -> ServeResponse:
        handle = item.handle
        request = item.ticket.request
        seq = item.ticket.seq
        if item.budget is not None and item.budget.expired():
            obs.count("serve.deadline.queue")
            return ServeResponse(
                session=handle.session_id,
                seq=seq,
                outcome="deadline",
                detail=(
                    f"budget of {item.budget.seconds}s spent after "
                    f"{queue_wait:.3f}s in queue"
                ),
                config_sha256=handle.config_sha256(),
            )
        try:
            report: UpdateReport = handle.session.request(
                request.intent, request.target, budget=item.budget
            )
        except DeadlineExceeded as exc:
            return ServeResponse(
                session=handle.session_id,
                seq=seq,
                outcome="deadline",
                detail=str(exc),
                questions=exc.questions_asked,
                config_sha256=handle.config_sha256(),
            )
        except SynthesisPunt as exc:
            return ServeResponse(
                session=handle.session_id,
                seq=seq,
                outcome="needs-clarification",
                detail=str(exc),
                attempts=exc.attempts,
                config_sha256=handle.config_sha256(),
            )
        except (ClarifyError, ValueError) as exc:
            return ServeResponse(
                session=handle.session_id,
                seq=seq,
                outcome="error",
                detail=f"{type(exc).__name__}: {exc}",
                config_sha256=handle.config_sha256(),
            )
        except Exception as exc:  # noqa: BLE001 - the service must not die
            obs.count("serve.internal_errors")
            return ServeResponse(
                session=handle.session_id,
                seq=seq,
                outcome="internal-error",
                detail=f"{type(exc).__name__}: {exc}",
                config_sha256=handle.config_sha256(),
            )
        return ServeResponse(
            session=handle.session_id,
            seq=seq,
            outcome="applied",
            position=report.position,
            llm_calls=report.llm_calls,
            questions=report.questions,
            attempts=report.attempts,
            overlaps=tuple(report.overlaps),
            gate_warnings=tuple(report.gate_warnings),
            config_sha256=handle.config_sha256(),
        )


__all__ = [
    "AdmissionError",
    "ClarifyService",
    "OUTCOMES",
    "ServeRequest",
    "ServeResponse",
    "Ticket",
]
