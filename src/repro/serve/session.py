"""Per-session state for the serving layer.

A :class:`SessionManager` owns many named Clarify sessions over shared
substrates: every session gets its own
:class:`~repro.core.workflow.ClarifySession` (policy snapshot, oracle,
history) while the LLM client is shared across all of them — typically a
:class:`~repro.llm.dedup.DedupClient` so identical in-flight requests
collapse to one upstream call.

Concurrency contract: ``ClarifySession`` is not thread-safe (see the
re-entrancy audit in :mod:`repro.core.workflow`), so each managed
session carries a condition variable and a FIFO ticket pair
(``submitted_seq``/``next_seq``).  :class:`repro.serve.service.ClarifyService`
stamps every accepted request with the session's next ``submitted_seq``
and a worker only executes a request once ``next_seq`` catches up — so a
session's requests run strictly in submission order no matter how the
pool schedules them, which is what makes pooled outcomes identical to a
serial run.

Journals: with ``memory_journals=True`` (or ``journal_dir`` set) every
session records its own :class:`~repro.obs.journal.JournalRecorder`;
the service activates it thread-locally around each request, so the
per-session streams stay replayable even under a concurrent pool.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # imported only for annotations; avoids a heavy import
    from repro.lint.netwide.gate import NetwideGate

from repro import obs
from repro.config import parse_config, render_config
from repro.config.store import ConfigStore
from repro.core.disambiguator import DisambiguationMode
from repro.core.oracle import FirstOptionOracle, UserOracle
from repro.core.workflow import ClarifySession
from repro.llm.client import LLMClient
from repro.obs.journal import JournalRecorder


class ManagedSession:
    """One named Clarify session plus its serving-side bookkeeping."""

    def __init__(
        self,
        session_id: str,
        session: ClarifySession,
        journal: Optional[JournalRecorder] = None,
    ) -> None:
        self.session_id = session_id
        self.session = session
        self.journal = journal
        #: Guards ``submitted_seq`` assignment and ``next_seq`` waits.
        self.cond = threading.Condition()
        #: Sequence number the next accepted request will be stamped with.
        self.submitted_seq = 0
        #: Sequence number of the request allowed to execute now.
        self.next_seq = 0
        #: Requests this session has resolved (bumped by the service
        #: under ``cond``; surfaced via the serve ``stats`` op).
        self.completed = 0

    def config_text(self) -> str:
        """The session's current rendered configuration."""
        return render_config(self.session.store)

    def config_sha256(self) -> str:
        return obs.sha256_text(self.config_text())


class SessionManager:
    """Creates, looks up, and closes the sessions a service runs.

    ``llm`` is shared by every session (each ``ClarifySession`` wraps it
    in its own :class:`~repro.llm.transcript.TranscribingClient`, so
    per-session call counts stay exact even when the shared client
    deduplicates upstream calls).  ``oracle_factory`` builds one oracle
    per session — the default always answers option 1, the loadgen's
    deterministic choice.
    """

    def __init__(
        self,
        llm: Optional[LLMClient] = None,
        oracle_factory: Optional[Callable[[], UserOracle]] = None,
        mode: DisambiguationMode = DisambiguationMode.FULL,
        max_attempts: int = 3,
        lint_gate: bool = False,
        netwide_gate_factory: Optional[Callable[[], "NetwideGate"]] = None,
        memory_journals: bool = False,
        journal_dir: Optional[str] = None,
    ) -> None:
        self._llm = llm
        self._oracle_factory = oracle_factory or FirstOptionOracle
        self._mode = mode
        self._max_attempts = max_attempts
        self._lint_gate = lint_gate
        #: Builds one whole-network advisory gate per session (each gate
        #: holds its own incremental analyzer); None disables the layer.
        self._netwide_gate_factory = netwide_gate_factory
        self._memory_journals = memory_journals
        self._journal_dir = journal_dir
        self._lock = threading.Lock()
        self._sessions: Dict[str, ManagedSession] = {}
        self._opened = 0

    # ------------------------------------------------------------ lifecycle

    def open(
        self,
        session_id: str,
        config_text: str = "",
        store: Optional[ConfigStore] = None,
    ) -> ManagedSession:
        """Create a session; ``config_text`` seeds its configuration."""
        if store is None:
            store = parse_config(config_text)
        journal = self._make_journal(session_id)
        with self._lock:
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already open")
            self._opened += 1
            numeric_id = self._opened
        session = ClarifySession(
            store=store,
            llm=self._llm,
            oracle=self._oracle_factory(),
            mode=self._mode,
            max_attempts=self._max_attempts,
            lint_gate=self._lint_gate,
            netwide_gate=(
                self._netwide_gate_factory()
                if self._netwide_gate_factory is not None
                else None
            ),
            session_id=numeric_id,
        )
        managed = ManagedSession(session_id, session, journal=journal)
        with self._lock:
            self._sessions[session_id] = managed
        obs.count("serve.sessions.opened")
        return managed

    def _make_journal(self, session_id: str) -> Optional[JournalRecorder]:
        if self._journal_dir is not None:
            safe = "".join(
                c if c.isalnum() or c in "-_." else "_" for c in session_id
            )
            path = os.path.join(self._journal_dir, f"{safe}.journal.jsonl")
            return JournalRecorder(path)
        if self._memory_journals:
            return JournalRecorder()
        return None

    def get(self, session_id: str) -> Optional[ManagedSession]:
        with self._lock:
            return self._sessions.get(session_id)

    def close(self, session_id: str) -> bool:
        """Forget a session, closing its journal; False if unknown."""
        with self._lock:
            managed = self._sessions.pop(session_id, None)
        if managed is None:
            return False
        if managed.journal is not None:
            managed.journal.close()
        obs.count("serve.sessions.closed")
        return True

    def close_all(self) -> None:
        for session_id in self.ids():
            self.close(session_id)

    # ------------------------------------------------------------- queries

    def ids(self) -> List[str]:
        """Open session ids, in creation order."""
        with self._lock:
            return list(self._sessions)

    def completed_counts(self) -> Dict[str, int]:
        """Per-session resolved-request counts, in creation order."""
        with self._lock:
            managed = list(self._sessions.values())
        return {m.session_id: m.completed for m in managed}

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._sessions


__all__ = ["ManagedSession", "SessionManager"]
