"""Per-session state for the serving layer.

A :class:`SessionManager` owns many named Clarify sessions over shared
substrates: every session gets its own
:class:`~repro.core.workflow.ClarifySession` (policy snapshot, oracle,
history) while the LLM client is shared across all of them — typically a
:class:`~repro.llm.dedup.DedupClient` so identical in-flight requests
collapse to one upstream call.

Concurrency contract: ``ClarifySession`` is not thread-safe (see the
re-entrancy audit in :mod:`repro.core.workflow`), so each managed
session carries a condition variable and a FIFO ticket pair
(``submitted_seq``/``next_seq``).  :class:`repro.serve.service.ClarifyService`
stamps every accepted request with the session's next ``submitted_seq``
and a worker only executes a request once ``next_seq`` catches up — so a
session's requests run strictly in submission order no matter how the
pool schedules them, which is what makes pooled outcomes identical to a
serial run.

Journals: with ``memory_journals=True`` (or ``journal_dir`` set) every
session records its own :class:`~repro.obs.journal.JournalRecorder`;
the service activates it thread-locally around each request, so the
per-session streams stay replayable even under a concurrent pool.

Durability: pass a :class:`~repro.serve.store.SessionStore` and every
session's journal is owned by the store (write-through, fsynced for the
durable implementation); after a crash, :meth:`SessionManager.restore_all`
rebuilds every open session bit-exactly from its journal via
deterministic replay, and :meth:`ManagedSession.replayed_response`
serves re-sent pre-crash requests idempotently.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # imported only for annotations; avoids a heavy import
    from repro.lint.netwide.gate import NetwideGate

from repro import obs
from repro.config import parse_config, render_config
from repro.config.store import ConfigStore
from repro.core.disambiguator import DisambiguationMode
from repro.core.oracle import FirstOptionOracle, UserOracle
from repro.core.workflow import ClarifySession
from repro.llm.client import LLMClient
from repro.obs.journal import JournalRecorder
from repro.serve.store import (
    RestoredSession,
    SessionRecord,
    SessionStore,
    rebuild_session,
)


class ManagedSession:
    """One named Clarify session plus its serving-side bookkeeping."""

    def __init__(
        self,
        session_id: str,
        session: ClarifySession,
        journal: Optional[JournalRecorder] = None,
    ) -> None:
        self.session_id = session_id
        self.session = session
        self.journal = journal
        #: Guards ``submitted_seq`` assignment and ``next_seq`` waits.
        self.cond = threading.Condition()
        #: Sequence number the next accepted request will be stamped with.
        self.submitted_seq = 0
        #: Sequence number of the request allowed to execute now.
        self.next_seq = 0
        #: Requests this session has resolved (bumped by the service
        #: under ``cond``; surfaced via the serve ``stats`` op).
        self.completed = 0
        #: Set when this session was rebuilt from a journal after a
        #: crash; carries the pre-crash responses for idempotent replay.
        self.restored: Optional[RestoredSession] = None

    def replayed_response(self, seq: int) -> Optional[object]:
        """The pre-crash response for ``seq``, if this session was
        restored and ``seq`` resolved before the crash (else None).

        This is the exactly-once half of crash recovery: the router
        re-sends every in-flight request after a shard restart, and
        already-resolved sequence numbers are answered from the journal
        instead of being run a second time.
        """
        if self.restored is None:
            return None
        if 0 <= seq < len(self.restored.responses):
            return self.restored.responses[seq]
        return None

    def config_text(self) -> str:
        """The session's current rendered configuration."""
        return render_config(self.session.store)

    def config_sha256(self) -> str:
        return obs.sha256_text(self.config_text())


class SessionManager:
    """Creates, looks up, and closes the sessions a service runs.

    ``llm`` is shared by every session (each ``ClarifySession`` wraps it
    in its own :class:`~repro.llm.transcript.TranscribingClient`, so
    per-session call counts stay exact even when the shared client
    deduplicates upstream calls).  ``oracle_factory`` builds one oracle
    per session — the default always answers option 1, the loadgen's
    deterministic choice.
    """

    def __init__(
        self,
        llm: Optional[LLMClient] = None,
        oracle_factory: Optional[Callable[[], UserOracle]] = None,
        mode: DisambiguationMode = DisambiguationMode.FULL,
        max_attempts: int = 3,
        lint_gate: bool = False,
        netwide_gate_factory: Optional[Callable[[], "NetwideGate"]] = None,
        memory_journals: bool = False,
        journal_dir: Optional[str] = None,
        session_store: Optional[SessionStore] = None,
    ) -> None:
        self._llm = llm
        self._oracle_factory = oracle_factory or FirstOptionOracle
        self._mode = mode
        self._max_attempts = max_attempts
        self._lint_gate = lint_gate
        #: Builds one whole-network advisory gate per session (each gate
        #: holds its own incremental analyzer); None disables the layer.
        self._netwide_gate_factory = netwide_gate_factory
        self._memory_journals = memory_journals
        self._journal_dir = journal_dir
        #: Durable session tier (:mod:`repro.serve.store`): when set it
        #: owns every session's journal and ``restore_all`` can rebuild
        #: the manager's state after a crash.  Takes precedence over
        #: ``journal_dir``/``memory_journals``.
        self.session_store = session_store
        self._lock = threading.Lock()
        self._sessions: Dict[str, ManagedSession] = {}
        self._opened = 0

    # ------------------------------------------------------------ lifecycle

    def open(
        self,
        session_id: str,
        config_text: str = "",
        store: Optional[ConfigStore] = None,
    ) -> ManagedSession:
        """Create a session; ``config_text`` seeds its configuration."""
        if store is None:
            store = parse_config(config_text)
        elif not config_text:
            config_text = render_config(store)
        journal = self._make_journal(session_id, config_text)
        with self._lock:
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already open")
            self._opened += 1
            numeric_id = self._opened
        session = ClarifySession(
            store=store,
            llm=self._llm,
            oracle=self._oracle_factory(),
            mode=self._mode,
            max_attempts=self._max_attempts,
            lint_gate=self._lint_gate,
            netwide_gate=(
                self._netwide_gate_factory()
                if self._netwide_gate_factory is not None
                else None
            ),
            session_id=numeric_id,
        )
        managed = ManagedSession(session_id, session, journal=journal)
        with self._lock:
            self._sessions[session_id] = managed
        obs.count("serve.sessions.opened")
        return managed

    def _make_journal(
        self, session_id: str, config_text: str = ""
    ) -> Optional[JournalRecorder]:
        if self.session_store is not None:
            return self.session_store.open(self._record(session_id, config_text))
        if self._journal_dir is not None:
            safe = "".join(
                c if c.isalnum() or c in "-_." else "_" for c in session_id
            )
            path = os.path.join(self._journal_dir, f"{safe}.journal.jsonl")
            return JournalRecorder(path)
        if self._memory_journals:
            return JournalRecorder()
        return None

    def _record(self, session_id: str, config_text: str) -> SessionRecord:
        return SessionRecord(
            session_id=session_id,
            config_text=config_text,
            mode=self._mode.value,
            max_attempts=self._max_attempts,
            lint_gate=self._lint_gate,
        )

    def restore_all(self) -> List[str]:
        """Rebuild every open session from the session store's journals.

        Each restored session resumes exactly where the journal's
        complete-cycle prefix left it: its configuration store is the
        replay-verified post-crash state, ``submitted_seq``/``next_seq``
        continue from the number of already-resolved requests, and the
        pre-crash responses are kept for idempotent re-sends
        (:meth:`ManagedSession.replayed_response`).  Returns the
        restored session ids in manifest order; raises
        :class:`~repro.serve.store.RestoreError` on any divergence.
        """
        if self.session_store is None:
            raise ValueError("restore_all requires a session_store")
        restored_ids: List[str] = []
        for record in self.session_store.records():
            snapshot = self.session_store.snapshot(record.session_id)
            rebuilt = rebuild_session(
                snapshot,
                llm=self._llm,
                oracle_factory=self._oracle_factory,
                netwide_gate_factory=self._netwide_gate_factory,
            )
            journal = self.session_store.resume(record, rebuilt.events)
            managed = ManagedSession(
                record.session_id, rebuilt.session, journal=journal
            )
            managed.submitted_seq = rebuilt.completed
            managed.next_seq = rebuilt.completed
            managed.completed = rebuilt.completed
            managed.restored = rebuilt
            with self._lock:
                self._opened += 1
                self._sessions[record.session_id] = managed
            obs.count("serve.sessions.restored")
            restored_ids.append(record.session_id)
        return restored_ids

    def get(self, session_id: str) -> Optional[ManagedSession]:
        with self._lock:
            return self._sessions.get(session_id)

    def close(self, session_id: str) -> bool:
        """Forget a session, closing its journal; False if unknown."""
        with self._lock:
            managed = self._sessions.pop(session_id, None)
        if managed is None:
            return False
        if managed.journal is not None:
            managed.journal.close()
        if self.session_store is not None:
            self.session_store.close(session_id)
        obs.count("serve.sessions.closed")
        return True

    def close_all(self) -> None:
        for session_id in self.ids():
            self.close(session_id)

    # ------------------------------------------------------------- queries

    def ids(self) -> List[str]:
        """Open session ids, in creation order."""
        with self._lock:
            return list(self._sessions)

    def completed_counts(self) -> Dict[str, int]:
        """Per-session resolved-request counts, in creation order."""
        with self._lock:
            managed = list(self._sessions.values())
        return {m.session_id: m.completed for m in managed}

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._sessions


__all__ = ["ManagedSession", "SessionManager"]
