"""``repro.serve`` — concurrent multi-session Clarify serving.

The paper's Clarify loop is one user talking to one session; the
north-star system serves fleets of operators concurrently.  This package
is that serving layer (architecture in ``docs/SERVING.md``):

* :class:`~repro.serve.session.SessionManager` — owns per-session state
  (configuration store, oracle, optional journal) keyed by session id,
  with the per-session locks/FIFO ordering that make
  :class:`~repro.core.workflow.ClarifySession` safe to drive from a pool;
* :class:`~repro.serve.service.ClarifyService` — a bounded work queue and
  thread pool with admission control (reject-with-retry-after past the
  high-water mark) and per-request time budgets
  (:class:`~repro.core.budget.TimeBudget`);
* :mod:`~repro.serve.loadgen` — a deterministic seeded workload generator
  (campus/cloud intent mix, optional :class:`~repro.llm.faulty.FaultyLLM`
  chaos rate) reporting throughput, latency quantiles, and per-outcome
  counters to ``benchmarks/BENCH_serve.json``.

The layer's core invariant: a serial run (one worker) and a pooled run
of the same seeded workload produce **identical per-session outcomes** —
concurrency changes latency, never results.  ``clarify loadgen
--check-serial-identity`` asserts this end to end, and CI runs it on
every push.
"""

from repro.serve.loadgen import (
    CacheEffectiveness,
    LLMStack,
    LoadgenReport,
    SessionSpec,
    TelemetryOverhead,
    build_llm_stack,
    check_cache_effectiveness,
    check_serial_identity,
    check_telemetry_overhead,
    generate_workload,
    run_loadgen,
)
from repro.serve.service import (
    AdmissionError,
    ClarifyService,
    ServeRequest,
    ServeResponse,
    Ticket,
)
from repro.serve.session import ManagedSession, SessionManager

__all__ = [
    "AdmissionError",
    "CacheEffectiveness",
    "ClarifyService",
    "LLMStack",
    "LoadgenReport",
    "ManagedSession",
    "ServeRequest",
    "ServeResponse",
    "SessionSpec",
    "SessionManager",
    "TelemetryOverhead",
    "Ticket",
    "build_llm_stack",
    "check_cache_effectiveness",
    "check_serial_identity",
    "check_telemetry_overhead",
    "generate_workload",
    "run_loadgen",
]
