"""``repro.serve`` — concurrent multi-session Clarify serving.

The paper's Clarify loop is one user talking to one session; the
north-star system serves fleets of operators concurrently.  This package
is that serving layer (architecture in ``docs/SERVING.md``):

* :class:`~repro.serve.session.SessionManager` — owns per-session state
  (configuration store, oracle, optional journal) keyed by session id,
  with the per-session locks/FIFO ordering that make
  :class:`~repro.core.workflow.ClarifySession` safe to drive from a pool;
* :class:`~repro.serve.service.ClarifyService` — a bounded work queue and
  thread pool with admission control (reject-with-retry-after past the
  high-water mark) and per-request time budgets
  (:class:`~repro.core.budget.TimeBudget`);
* :mod:`~repro.serve.loadgen` — a deterministic seeded workload generator
  (campus/cloud intent mix, optional :class:`~repro.llm.faulty.FaultyLLM`
  chaos rate) reporting throughput, latency quantiles, and per-outcome
  counters to ``benchmarks/BENCH_serve.json``;
* :mod:`~repro.serve.store` — pluggable session durability: an
  in-memory store and a :class:`~repro.serve.store.DurableSessionStore`
  (fsynced per-session journals plus a manifest) whose snapshots rebuild
  live sessions bit-exactly by deterministic journal replay;
* :mod:`~repro.serve.shard` — horizontal scale-out: a consistent-hash
  ring (:class:`~repro.serve.shard.HashRing`) placing sessions onto N
  shard serve processes behind a thin router with per-shard and global
  admission high-water marks, plus first-class crash recovery
  (SIGKILL a shard, restart with ``--restore``, replay its journals).

The layer's core invariant: a serial run (one worker) and a pooled run
of the same seeded workload produce **identical per-session outcomes** —
concurrency changes latency, never results.  ``clarify loadgen
--check-serial-identity`` asserts this end to end, and ``clarify
loadgen --check-shard-identity`` extends it across process boundaries
and a mid-campaign shard kill; CI runs both on every push.
"""

from repro.serve.loadgen import (
    CacheEffectiveness,
    LLMStack,
    LoadgenReport,
    SessionSpec,
    TelemetryOverhead,
    build_llm_stack,
    check_cache_effectiveness,
    check_serial_identity,
    check_telemetry_overhead,
    generate_workload,
    run_loadgen,
)
from repro.serve.service import (
    AdmissionError,
    ClarifyService,
    ServeRequest,
    ServeResponse,
    Ticket,
)
from repro.serve.session import ManagedSession, SessionManager
from repro.serve.shard import (
    HashRing,
    ShardCampaignReport,
    ShardedCluster,
    ShardIdentity,
    check_shard_identity,
    run_sharded_loadgen,
)
from repro.serve.store import (
    DurableSessionStore,
    InMemorySessionStore,
    RestoreError,
    SessionRecord,
    SessionSnapshot,
    SessionStore,
    rebuild_session,
)

__all__ = [
    "AdmissionError",
    "CacheEffectiveness",
    "ClarifyService",
    "DurableSessionStore",
    "HashRing",
    "InMemorySessionStore",
    "LLMStack",
    "LoadgenReport",
    "ManagedSession",
    "RestoreError",
    "ServeRequest",
    "ServeResponse",
    "SessionSpec",
    "SessionManager",
    "SessionRecord",
    "SessionSnapshot",
    "SessionStore",
    "ShardCampaignReport",
    "ShardIdentity",
    "ShardedCluster",
    "TelemetryOverhead",
    "Ticket",
    "build_llm_stack",
    "check_cache_effectiveness",
    "check_serial_identity",
    "check_shard_identity",
    "check_telemetry_overhead",
    "generate_workload",
    "rebuild_session",
    "run_loadgen",
    "run_sharded_loadgen",
]
