"""Request time budgets: deadlines threaded through the Clarify cycle.

A :class:`TimeBudget` is a wall-clock deadline a request carries with it.
The serving layer (:mod:`repro.serve`) attaches one to every request so a
misbehaving LLM or a pathological disambiguation cannot hold a worker
forever; the two iterative phases of the pipeline poll it:

* the synthesis retry loop checks the budget before every re-attempt and
  *punts* (the paper's "needs clarification" outcome, §2.1) with the
  failures collected so far instead of burning more attempts;
* the disambiguator's binary search checks the budget before every
  differential question and raises :class:`~repro.core.errors.DeadlineExceeded`
  carrying the questions already asked — the session's configuration is
  untouched, so the caller can retry with a larger budget.

The budget is *ambient*: :func:`budget_scope` installs it in a
thread-local slot for the dynamic extent of one request, and the pipeline
reads it via :func:`current_budget`.  This keeps every intermediate
signature unchanged and composes with the serving layer's
one-request-per-thread execution model.  With no budget installed every
check is a no-op, so library users pay nothing.

The clock is injectable (``clock=time.monotonic`` by default) so tests
can drive expiry deterministically instead of sleeping.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Iterator, Optional

from repro.core.errors import DeadlineExceeded


class TimeBudget:
    """A wall-clock budget for one request, measured from construction."""

    __slots__ = ("seconds", "_clock", "_t0")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0:
            raise ValueError(f"budget must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._t0 = clock()

    def elapsed(self) -> float:
        """Seconds spent since the budget started."""
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.elapsed() >= self.seconds

    def check(self, where: str, questions_asked: int = 0) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                where, self.seconds, questions_asked=questions_asked
            )

    def __repr__(self) -> str:
        return (
            f"TimeBudget({self.seconds}s, remaining={self.remaining():.3f}s)"
        )


# ------------------------------------------------------ the ambient budget

_local = threading.local()


def current_budget() -> Optional[TimeBudget]:
    """The budget installed for the current thread's request, if any."""
    return getattr(_local, "budget", None)


@contextlib.contextmanager
def budget_scope(budget: Optional[TimeBudget]) -> Iterator[Optional[TimeBudget]]:
    """Install ``budget`` as the ambient budget for the block.

    ``budget_scope(None)`` leaves the current ambient budget untouched,
    so an unbudgeted entry point nested under a budgeted one inherits the
    outer deadline instead of silently cancelling it.
    """
    if budget is None:
        yield current_budget()
        return
    previous = getattr(_local, "budget", None)
    _local.budget = budget
    try:
        yield budget
    finally:
        _local.budget = previous


def check_budget(where: str, questions_asked: int = 0) -> None:
    """Raise :class:`DeadlineExceeded` if the ambient budget is spent."""
    budget = current_budget()
    if budget is not None:
        budget.check(where, questions_asked=questions_asked)


def budget_expired() -> bool:
    """True when an ambient budget exists and is spent."""
    budget = current_budget()
    return budget is not None and budget.expired()


def remaining_time(default: Optional[float] = None) -> Optional[float]:
    """Seconds left on the ambient budget, or ``default`` when none is set.

    The remote LLM client derives every attempt's socket timeout from
    this, so a request that arrives with two seconds of budget never
    blocks a serving worker for a thirty-second attempt: the attempt is
    capped at the deadline and its failure surfaces while the budget can
    still degrade gracefully.
    """
    budget = current_budget()
    if budget is None:
        return default
    return budget.remaining()


__all__ = [
    "TimeBudget",
    "budget_expired",
    "budget_scope",
    "check_budget",
    "current_budget",
    "remaining_time",
]
