"""Disambiguated insertion into ancillary lists (the paper's §7 extension).

The paper's future work: "the tool needs support for inserting entries
into other data structures that can have conflicts like prefix lists,
community-lists and AS-path lists."  These lists are first-match-wins
policies over their own input domains (networks, community sets, AS
paths), so the §4 algorithm applies unchanged: find the existing entries
whose match space overlaps the new entry's, binary-search the insertion
slot, and ask the user differential questions — here a concrete network,
community set, or AS path that the candidate positions treat
differently.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.prefixspace import PrefixAtom, PrefixSpace
from repro.config.lists import (
    PERMIT,
    AsPathAccessList,
    AsPathEntry,
    CommunityList,
    CommunityListEntry,
    PrefixList,
    PrefixListEntry,
)
from repro.config.store import ConfigStore
from repro.core.disambiguator import (
    DisambiguationMode,
    _binary_search_slot,
    _linear_scan_slot,
    _slot_to_position,
    _top_bottom,
)
from repro.core.oracle import DisambiguationQuestion, UserOracle
from repro.regexlib.cisco import (
    find_as_path,
    find_community,
    literal_community_pattern,
    render_as_path,
)


@dataclasses.dataclass(frozen=True)
class ListEntryResult:
    """The outcome of matching one input against a list."""

    action: str

    def behaviour_key(self) -> tuple:
        return (self.action,)

    def render(self, indent: str = "") -> str:
        return f"{indent}ACTION: {self.action}"


@dataclasses.dataclass(frozen=True)
class ListEntryDifference:
    """One concrete input on which two candidate lists disagree."""

    #: A human-readable label for the input kind ("Network", "AS Path",
    #: "Communities").
    label: str
    subject: object
    result_a: ListEntryResult
    result_b: ListEntryResult

    def render(self) -> str:
        return (
            f"{self.label}: {self._subject_text()}"
            + "\n\nOPTION 1:\n\n"
            + self.result_a.render()
            + "\n\nOPTION 2:\n\n"
            + self.result_b.render()
        )

    def _subject_text(self) -> str:
        if isinstance(self.subject, (list, tuple)):
            return render_as_path(self.subject) or "(empty)"
        if isinstance(self.subject, frozenset):
            return ", ".join(sorted(self.subject)) or "(none)"
        return str(self.subject)


@dataclasses.dataclass(frozen=True)
class ListInsertionResult:
    """Outcome of one disambiguated list insertion."""

    position: int
    questions: Tuple[DisambiguationQuestion, ...]
    overlaps: Tuple[int, ...]
    store: ConfigStore

    @property
    def question_count(self) -> int:
        return len(self.questions)


def _search(mode: DisambiguationMode):
    if mode is DisambiguationMode.LINEAR:
        return _linear_scan_slot
    return _binary_search_slot


def _record_list_run(sp, overlaps, questions, position) -> None:
    """Metric bookkeeping shared by the three list-insertion kinds."""
    obs.count("listinsert.runs")
    obs.count("listinsert.questions", len(questions))
    obs.observe("listinsert.overlaps", len(overlaps))
    sp.annotate(
        overlaps=len(overlaps), questions=len(questions), position=position
    )


# ------------------------------------------------------------ prefix lists


def _prefix_entry_atom(entry: PrefixListEntry) -> PrefixAtom:
    lo, hi = entry.length_bounds()
    return PrefixAtom(entry.prefix, lo, hi)


def _prefix_list_cells(
    pl: PrefixList,
) -> List[Tuple[str, PrefixSpace]]:
    """(action, reachable space) per entry, plus the implicit deny."""
    remaining = PrefixSpace.universe()
    cells: List[Tuple[str, PrefixSpace]] = []
    for entry in pl.entries:
        atom_space = PrefixSpace.of_atom(_prefix_entry_atom(entry))
        cells.append((entry.action, atom_space.intersect(remaining)))
        remaining = remaining.subtract(atom_space)
    cells.append(("deny", remaining))
    return cells


def compare_prefix_lists(
    list_a: PrefixList, list_b: PrefixList
) -> Optional[ListEntryDifference]:
    """A network the two lists treat differently, or None if equivalent."""
    for action_a, space_a in _prefix_list_cells(list_a):
        for action_b, space_b in _prefix_list_cells(list_b):
            if action_a == action_b:
                continue
            witness = space_a.intersect(space_b).witness()
            if witness is None:
                continue
            # Validate against the concrete semantics before reporting.
            real_a = PERMIT if list_a.permits(witness) else "deny"
            real_b = PERMIT if list_b.permits(witness) else "deny"
            if real_a == real_b:
                continue
            return ListEntryDifference(
                "Network",
                witness,
                ListEntryResult(real_a),
                ListEntryResult(real_b),
            )
    return None


def prefix_list_entry_overlaps(
    pl: PrefixList, entry: PrefixListEntry
) -> List[int]:
    new_atom = _prefix_entry_atom(entry)
    return [
        idx
        for idx, existing in enumerate(pl.entries)
        if _prefix_entry_atom(existing).intersect(new_atom) is not None
    ]


def insert_prefix_list_entry(
    pl: PrefixList, entry: PrefixListEntry, position: int
) -> PrefixList:
    """Insert ``entry`` before index ``position``, resequencing by 10s."""
    entries = list(pl.entries)
    entries.insert(position, entry)
    resequenced = tuple(
        dataclasses.replace(e, seq=10 * (idx + 1))
        for idx, e in enumerate(entries)
    )
    return PrefixList(pl.name, resequenced)


def disambiguate_prefix_list_entry(
    store: ConfigStore,
    list_name: str,
    entry: PrefixListEntry,
    oracle: UserOracle,
    mode: DisambiguationMode = DisambiguationMode.FULL,
) -> ListInsertionResult:
    """Insert a prefix-list entry, disambiguating its position (§7)."""
    with obs.span("listinsert.prefix_list", target=list_name, mode=mode.value) as sp:
        target = (
            store.prefix_list(list_name)
            if store.has_prefix_list(list_name)
            else PrefixList(list_name, ())
        )

        def build(position: int) -> PrefixList:
            real = len(target.entries) if position == -1 else position
            return insert_prefix_list_entry(target, entry, real)

        def diff(a: PrefixList, b: PrefixList) -> Optional[ListEntryDifference]:
            return compare_prefix_lists(a, b)

        overlaps = prefix_list_entry_overlaps(target, entry)
        if mode is DisambiguationMode.TOP_BOTTOM:
            position, questions = _top_bottom(
                len(target.entries), build, diff, oracle
            )
        else:
            position, questions = _search(mode)(
                overlaps, _slot_to_position, build, diff, oracle
            )
            if position == -1:
                position = len(target.entries)
        updated_store = store.copy()
        updated_store.add_prefix_list(build(position), replace=True)
        _record_list_run(sp, overlaps, questions, position)
        return ListInsertionResult(
            position=position,
            questions=tuple(questions),
            overlaps=tuple(overlaps),
            store=updated_store,
        )


# ----------------------------------------------------------- as-path lists


def _as_path_cells(
    al: AsPathAccessList,
) -> List[Tuple[str, FrozenSet[str], FrozenSet[str]]]:
    """(action, required, forbidden) per entry, plus the implicit deny."""
    cells: List[Tuple[str, FrozenSet[str], FrozenSet[str]]] = []
    forbidden: FrozenSet[str] = frozenset()
    for entry in al.entries:
        cells.append((entry.action, frozenset((entry.regex,)), forbidden))
        forbidden = forbidden | {entry.regex}
    cells.append(("deny", frozenset(), forbidden))
    return cells


def compare_as_path_lists(
    list_a: AsPathAccessList, list_b: AsPathAccessList
) -> Optional[ListEntryDifference]:
    """An AS path the two lists treat differently, or None."""
    for action_a, req_a, forb_a in _as_path_cells(list_a):
        for action_b, req_b, forb_b in _as_path_cells(list_b):
            if action_a == action_b:
                continue
            path = find_as_path(
                sorted(req_a | req_b), sorted(forb_a | forb_b)
            )
            if path is None:
                continue
            real_a = PERMIT if _as_path_permits(list_a, path) else "deny"
            real_b = PERMIT if _as_path_permits(list_b, path) else "deny"
            if real_a == real_b:
                continue
            return ListEntryDifference(
                "AS Path",
                path,
                ListEntryResult(real_a),
                ListEntryResult(real_b),
            )
    return None


def _as_path_permits(al: AsPathAccessList, path: Sequence[int]) -> bool:
    from repro.route import BgpRoute

    return al.permits(BgpRoute.build("0.0.0.0/0", as_path=path))


def as_path_entry_overlaps(al: AsPathAccessList, entry: AsPathEntry) -> List[int]:
    return [
        idx
        for idx, existing in enumerate(al.entries)
        if find_as_path([existing.regex, entry.regex], []) is not None
    ]


def insert_as_path_entry(
    al: AsPathAccessList, entry: AsPathEntry, position: int
) -> AsPathAccessList:
    entries = list(al.entries)
    entries.insert(position, entry)
    return AsPathAccessList(al.name, tuple(entries))


def disambiguate_as_path_entry(
    store: ConfigStore,
    list_name: str,
    entry: AsPathEntry,
    oracle: UserOracle,
    mode: DisambiguationMode = DisambiguationMode.FULL,
) -> ListInsertionResult:
    """Insert an as-path access-list entry, disambiguating its position."""
    with obs.span("listinsert.as_path", target=list_name, mode=mode.value) as sp:
        target = (
            store.as_path_list(list_name)
            if store.has_as_path_list(list_name)
            else AsPathAccessList(list_name, ())
        )

        def build(position: int) -> AsPathAccessList:
            real = len(target.entries) if position == -1 else position
            return insert_as_path_entry(target, entry, real)

        overlaps = as_path_entry_overlaps(target, entry)
        if mode is DisambiguationMode.TOP_BOTTOM:
            position, questions = _top_bottom(
                len(target.entries), build, compare_as_path_lists, oracle
            )
        else:
            position, questions = _search(mode)(
                overlaps, _slot_to_position, build, compare_as_path_lists, oracle
            )
            if position == -1:
                position = len(target.entries)
        updated_store = store.copy()
        updated_store.add_as_path_list(build(position), replace=True)
        _record_list_run(sp, overlaps, questions, position)
        return ListInsertionResult(
            position=position,
            questions=tuple(questions),
            overlaps=tuple(overlaps),
            store=updated_store,
        )


# --------------------------------------------------------- community lists


#: DNF of (required, forbidden) community-pattern sets.
_Dnf = List[Tuple[FrozenSet[str], FrozenSet[str]]]


def _entry_condition(entry: CommunityListEntry) -> _Dnf:
    if entry.regex is not None:
        return [(frozenset((entry.regex,)), frozenset())]
    return [
        (
            frozenset(literal_community_pattern(c) for c in entry.communities),
            frozenset(),
        )
    ]


def _entry_negation(entry: CommunityListEntry) -> _Dnf:
    if entry.regex is not None:
        return [(frozenset(), frozenset((entry.regex,)))]
    return [
        (frozenset(), frozenset((literal_community_pattern(c),)))
        for c in entry.communities
    ]


def _dnf_product(left: _Dnf, right: _Dnf) -> _Dnf:
    return [(lr | rr, lf | rf) for (lr, lf) in left for (rr, rf) in right]


def _community_cells(cl: CommunityList) -> List[Tuple[str, _Dnf]]:
    cells: List[Tuple[str, _Dnf]] = []
    preceding: _Dnf = [(frozenset(), frozenset())]
    for entry in cl.entries:
        cells.append(
            (entry.action, _dnf_product(_entry_condition(entry), preceding))
        )
        preceding = _dnf_product(preceding, _entry_negation(entry))
    cells.append(("deny", preceding))
    return cells


def _community_witness_set(
    required: FrozenSet[str], forbidden: FrozenSet[str]
) -> Optional[FrozenSet[str]]:
    witnesses = []
    for pattern in sorted(required):
        witness = find_community([pattern], sorted(forbidden))
        if witness is None:
            return None
        witnesses.append(witness)
    return frozenset(witnesses)


def compare_community_lists(
    list_a: CommunityList, list_b: CommunityList
) -> Optional[ListEntryDifference]:
    """A community set the two lists treat differently, or None."""
    from repro.route import BgpRoute

    for action_a, dnf_a in _community_cells(list_a):
        for action_b, dnf_b in _community_cells(list_b):
            if action_a == action_b:
                continue
            for required, forbidden in _dnf_product(dnf_a, dnf_b):
                witness = _community_witness_set(required, forbidden)
                if witness is None:
                    continue
                route = BgpRoute.build("0.0.0.0/0", communities=witness)
                real_a = PERMIT if list_a.permits(route) else "deny"
                real_b = PERMIT if list_b.permits(route) else "deny"
                if real_a == real_b:
                    continue
                return ListEntryDifference(
                    "Communities",
                    witness,
                    ListEntryResult(real_a),
                    ListEntryResult(real_b),
                )
    return None


def community_entry_overlaps(
    cl: CommunityList, entry: CommunityListEntry
) -> List[int]:
    out = []
    for idx, existing in enumerate(cl.entries):
        joint = _dnf_product(_entry_condition(existing), _entry_condition(entry))
        if any(
            _community_witness_set(required, forbidden) is not None
            for required, forbidden in joint
        ):
            out.append(idx)
    return out


def insert_community_entry(
    cl: CommunityList, entry: CommunityListEntry, position: int
) -> CommunityList:
    if (entry.regex is not None) != cl.expanded and cl.entries:
        raise ValueError(
            f"entry kind does not match {('expanded' if cl.expanded else 'standard')} "
            f"community-list {cl.name}"
        )
    entries = list(cl.entries)
    entries.insert(position, entry)
    return CommunityList(cl.name, tuple(entries), expanded=cl.expanded)


def disambiguate_community_entry(
    store: ConfigStore,
    list_name: str,
    entry: CommunityListEntry,
    oracle: UserOracle,
    mode: DisambiguationMode = DisambiguationMode.FULL,
) -> ListInsertionResult:
    """Insert a community-list entry, disambiguating its position."""
    with obs.span("listinsert.community", target=list_name, mode=mode.value) as sp:
        target = (
            store.community_list(list_name)
            if store.has_community_list(list_name)
            else CommunityList(list_name, (), expanded=entry.regex is not None)
        )

        def build(position: int) -> CommunityList:
            real = len(target.entries) if position == -1 else position
            return insert_community_entry(target, entry, real)

        overlaps = community_entry_overlaps(target, entry)
        if mode is DisambiguationMode.TOP_BOTTOM:
            position, questions = _top_bottom(
                len(target.entries), build, compare_community_lists, oracle
            )
        else:
            position, questions = _search(mode)(
                overlaps, _slot_to_position, build, compare_community_lists, oracle
            )
            if position == -1:
                position = len(target.entries)
        updated_store = store.copy()
        updated_store.add_community_list(build(position), replace=True)
        _record_list_run(sp, overlaps, questions, position)
        return ListInsertionResult(
            position=position,
            questions=tuple(questions),
            overlaps=tuple(overlaps),
            store=updated_store,
        )


__all__ = [
    "ListEntryDifference",
    "ListEntryResult",
    "ListInsertionResult",
    "as_path_entry_overlaps",
    "community_entry_overlaps",
    "compare_as_path_lists",
    "compare_community_lists",
    "compare_prefix_lists",
    "disambiguate_as_path_entry",
    "disambiguate_community_entry",
    "disambiguate_prefix_list_entry",
    "insert_as_path_entry",
    "insert_community_entry",
    "insert_prefix_list_entry",
    "prefix_list_entry_overlaps",
]
