"""Exception types for the Clarify pipeline."""

from __future__ import annotations


class ClarifyError(RuntimeError):
    """Base class for pipeline failures."""


class SpecError(ClarifyError):
    """The JSON specification is malformed or unsupported."""


class SynthesisPunt(ClarifyError):
    """Synthesis kept failing verification and the retry threshold was hit.

    This is the paper's "punt to the user" outcome (§2.1): the caller
    should surface the accumulated failures and let the user rephrase or
    supply more information.
    """

    def __init__(self, attempts: int, failures: list) -> None:
        summary = "; ".join(str(f) for f in failures[-3:])
        super().__init__(
            f"synthesis failed verification {attempts} times; last failures: "
            f"{summary}"
        )
        self.attempts = attempts
        self.failures = failures


class DisambiguationError(ClarifyError):
    """The disambiguator could not complete (e.g. oracle misbehaviour)."""


__all__ = [
    "ClarifyError",
    "DisambiguationError",
    "SpecError",
    "SynthesisPunt",
]
