"""Exception types for the Clarify pipeline."""

from __future__ import annotations


class ClarifyError(RuntimeError):
    """Base class for pipeline failures."""


class SpecError(ClarifyError):
    """The JSON specification is malformed or unsupported."""


class SynthesisPunt(ClarifyError):
    """Synthesis kept failing verification and the retry threshold was hit.

    This is the paper's "punt to the user" outcome (§2.1): the caller
    should surface the accumulated failures and let the user rephrase or
    supply more information.
    """

    def __init__(self, attempts: int, failures: list) -> None:
        summary = "; ".join(str(f) for f in failures[-3:])
        super().__init__(
            f"synthesis failed verification {attempts} times; last failures: "
            f"{summary}"
        )
        self.attempts = attempts
        self.failures = failures


class DisambiguationError(ClarifyError):
    """The disambiguator could not complete (e.g. oracle misbehaviour)."""


class DeadlineExceeded(ClarifyError):
    """The request's time budget ran out mid-pipeline.

    Raised by the budget checks in the synthesis loop and the
    disambiguator's binary search (see :mod:`repro.core.budget`).  The
    session's configuration is never modified on this path — the caller
    holds a *partial* result (``questions_asked`` differential answers
    were collected before expiry) and should degrade to the paper's
    "needs clarification" outcome: retry with a larger budget or hand
    the decision back to the user.
    """

    def __init__(
        self, where: str, budget_s: float, questions_asked: int = 0
    ) -> None:
        super().__init__(
            f"time budget of {budget_s}s exhausted during {where} "
            f"({questions_asked} question(s) already asked)"
        )
        self.where = where
        self.budget_s = budget_s
        self.questions_asked = questions_asked


__all__ = [
    "ClarifyError",
    "DeadlineExceeded",
    "DisambiguationError",
    "SpecError",
    "SynthesisPunt",
]
