"""The synthesis pipeline: classify, retrieve, generate, verify, retry.

Steps 1-5 of Fig. 1.  Each user query costs one classification call and
one spec-extraction call, plus one synthesis call per attempt; the
verification loop re-invokes synthesis until the snippet passes or the
retry threshold punts to the user (:class:`~repro.core.errors.SynthesisPunt`).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

from repro import obs
from repro.config import ConfigParseError, parse_config
from repro.config.store import ConfigStore
from repro.core.budget import budget_expired, check_budget
from repro.core.errors import SpecError, SynthesisPunt
from repro.core.spec import AclSpec, RouteMapSpec
from repro.core.verify import (
    VerificationResult,
    verify_acl_snippet,
    verify_route_map_snippet,
)
from repro.llm.client import LLMClient
from repro.llm.prompts import PromptDatabase, TaskKind

ROUTE_MAP = "route-map"
ACL = "acl"

#: Default verification-failure threshold before punting to the user.
DEFAULT_MAX_ATTEMPTS = 3


@dataclasses.dataclass(frozen=True)
class SynthesisResult:
    """A verified snippet plus bookkeeping for the evaluation harness."""

    kind: str
    snippet: ConfigStore
    spec: Union[RouteMapSpec, AclSpec]
    attempts: int
    failures: List[str]


class SynthesisPipeline:
    """Classify a query, synthesise a snippet, and verify it in a loop."""

    def __init__(
        self,
        llm: LLMClient,
        prompts: Optional[PromptDatabase] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retriever=None,
    ) -> None:
        """``retriever`` is an optional
        :class:`repro.llm.strategies.ExampleRetriever`; when given, the
        few-shot examples in each system prompt are selected per query
        instead of being fixed (retrieval-augmented prompting, §7).
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._llm = llm
        self._prompts = prompts if prompts is not None else PromptDatabase()
        self._max_attempts = max_attempts
        self._retriever = retriever

    def _system_prompt(self, kind: TaskKind, prompt: str) -> str:
        template = self._prompts.template(kind)
        if self._retriever is not None and template.examples:
            template = self._retriever.augment(template, prompt)
        return template.render_system()

    # ------------------------------------------------------------ pieces

    def classify(self, prompt: str) -> str:
        """Step 1: is this a route-map or an ACL query?"""
        with obs.span("synthesis.classify") as sp:
            answer = self._llm.complete(
                self._system_prompt(TaskKind.CLASSIFY, prompt), prompt
            ).strip().lower()
            if answer not in (ROUTE_MAP, ACL):
                raise SpecError(f"classifier answered {answer!r}")
            sp.annotate(kind=answer)
            return answer

    def extract_spec(self, prompt: str, kind: str) -> Union[RouteMapSpec, AclSpec]:
        """Step 3: the JSON specification the user cross-checks."""
        with obs.span("synthesis.extract_spec", kind=kind):
            if kind == ROUTE_MAP:
                text = self._llm.complete(
                    self._system_prompt(TaskKind.ROUTE_MAP_SPEC, prompt), prompt
                )
                spec: Union[RouteMapSpec, AclSpec] = RouteMapSpec.from_json(text)
            else:
                text = self._llm.complete(
                    self._system_prompt(TaskKind.ACL_SPEC, prompt), prompt
                )
                spec = AclSpec.from_json(text)
            obs.event("spec.extracted", kind=kind, spec_json=text)
            return spec

    def generate_snippet(self, prompt: str, kind: str) -> str:
        """Step 3: one stanza/rule in IOS syntax (raw LLM text)."""
        task = TaskKind.ROUTE_MAP_SYNTH if kind == ROUTE_MAP else TaskKind.ACL_SYNTH
        with obs.span("synthesis.generate", kind=kind):
            return self._llm.complete(self._system_prompt(task, prompt), prompt)

    # ------------------------------------------------------------- runner

    def synthesize(self, prompt: str) -> SynthesisResult:
        """The full classify → spec → generate → verify → retry loop.

        Deadline-aware: when the ambient :class:`~repro.core.budget.TimeBudget`
        expires between attempts, the loop punts immediately with the
        failures collected so far (the graceful "needs clarification"
        outcome) instead of burning the remaining attempts; an expiry
        before any attempt raises
        :class:`~repro.core.errors.DeadlineExceeded`.
        """
        with obs.span("synthesis.synthesize") as pipeline_span:
            check_budget("synthesis.classify")
            kind = self.classify(prompt)
            spec = self.extract_spec(prompt, kind)
            failures: List[str] = []
            for attempt in range(1, self._max_attempts + 1):
                if budget_expired():
                    if failures:
                        obs.count("synthesis.deadline_punts")
                        obs.event(
                            "synthesis.punt",
                            attempts=attempt - 1,
                            failures=list(failures),
                            reason="deadline",
                        )
                        failures.append(
                            f"attempt {attempt}: abandoned, time budget "
                            "exhausted"
                        )
                        raise SynthesisPunt(attempt - 1, failures)
                    check_budget("synthesis.attempt")
                with obs.span("synthesis.attempt", attempt=attempt) as sp:
                    obs.count("synthesis.attempts")
                    raw = self.generate_snippet(prompt, kind)
                    try:
                        snippet = parse_config(raw)
                    except ConfigParseError as exc:
                        failures.append(
                            f"attempt {attempt}: snippet does not parse: {exc}"
                        )
                        obs.count("synthesis.retries")
                        obs.event(
                            "synthesis.retry",
                            attempt=attempt,
                            reason="parse-error",
                            detail=str(exc),
                        )
                        sp.annotate(outcome="parse-error")
                        continue
                    if kind == ROUTE_MAP:
                        verdict: VerificationResult = verify_route_map_snippet(
                            snippet, spec
                        )
                    else:
                        verdict = verify_acl_snippet(snippet, spec)
                    obs.event(
                        "verify.verdict",
                        attempt=attempt,
                        ok=verdict.ok,
                        problems=list(verdict.problems),
                    )
                    if verdict.ok:
                        sp.annotate(outcome="verified")
                        pipeline_span.annotate(kind=kind, attempts=attempt)
                        return SynthesisResult(
                            kind=kind,
                            snippet=snippet,
                            spec=spec,
                            attempts=attempt,
                            failures=failures,
                        )
                    failures.append(f"attempt {attempt}: {verdict}")
                    obs.count("synthesis.retries")
                    obs.event(
                        "synthesis.retry", attempt=attempt, reason="rejected"
                    )
                    sp.annotate(outcome="rejected")
            obs.count("synthesis.punts")
            obs.event(
                "synthesis.punt",
                attempts=self._max_attempts,
                failures=list(failures),
            )
            raise SynthesisPunt(self._max_attempts, failures)


__all__ = ["ACL", "ROUTE_MAP", "SynthesisPipeline", "SynthesisResult"]
