"""Verification of synthesised snippets against their specifications.

This is step 4 of Fig. 1: the stanza the LLM produced (parsed back into
configuration objects) is checked symbolically against the JSON spec
using the search machinery of :mod:`repro.analysis` — the reproduction's
equivalent of Batfish's ``searchFilters``/``searchRoutePolicies``.

Checked properties for a route-map snippet:

1. the snippet contains exactly one route-map with exactly one stanza;
2. the stanza's action equals the spec's;
3. the stanza's guard matches exactly the spec's match space — a
   counterexample route is produced for either direction of disagreement;
4. the stanza's set clauses implement exactly the spec's ``set`` object.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

from repro import obs
from repro.analysis.compare import transform_summary
from repro.analysis.headerspace import acl_guard_space
from repro.analysis.routespace import stanza_guard_space
from repro.config.store import ConfigStore
from repro.core.spec import AclSpec, RouteMapSpec
from repro.route import BgpRoute, Packet


@dataclasses.dataclass(frozen=True)
class VerificationResult:
    """The outcome of checking one snippet against one spec."""

    ok: bool
    problems: List[str] = dataclasses.field(default_factory=list)
    counterexample: Optional[Union[BgpRoute, Packet]] = None

    def __str__(self) -> str:
        if self.ok:
            return "verified"
        text = "; ".join(self.problems)
        if self.counterexample is not None:
            text += f" (counterexample: {self.counterexample})"
        return text


def _spec_sets_canonical(spec_sets: Dict[str, object]) -> Dict[str, object]:
    """The spec's ``set`` object in the transform-summary shape."""
    canonical: Dict[str, object] = {}
    for key, value in spec_sets.items():
        if key == "community":
            canonical["community"] = (
                tuple(sorted(value)),
                bool(spec_sets.get("community_additive", False)),
            )
        elif key == "community_additive":
            continue
        elif key == "prepend":
            canonical["prepend"] = tuple(value)
        elif key == "next_hop":
            canonical["next_hop"] = str(value)
        else:
            canonical[key] = value
    return canonical


def verify_route_map_snippet(
    snippet: ConfigStore, spec: RouteMapSpec
) -> VerificationResult:
    """Verify a synthesised route-map snippet against its specification."""
    with obs.span("verify.route_map") as sp:
        result = _verify_route_map_snippet(snippet, spec)
        obs.count("verify.checks")
        if not result.ok:
            obs.count("verify.failures")
        sp.annotate(ok=result.ok)
        return result


def _verify_route_map_snippet(
    snippet: ConfigStore, spec: RouteMapSpec
) -> VerificationResult:
    route_maps = list(snippet.route_maps())
    if len(route_maps) != 1:
        return VerificationResult(
            False, [f"snippet must define exactly one route-map, found {len(route_maps)}"]
        )
    route_map = route_maps[0]
    if len(route_map.stanzas) != 1:
        return VerificationResult(
            False,
            [
                f"snippet route-map {route_map.name} must have exactly one "
                f"stanza, found {len(route_map.stanzas)}"
            ],
        )
    stanza = route_map.stanzas[0]

    problems: List[str] = []
    if stanza.action != spec.action():
        problems.append(
            f"stanza action is {stanza.action}, spec wants {spec.action()}"
        )

    try:
        guard = stanza_guard_space(stanza, snippet)
    except KeyError as exc:
        return VerificationResult(False, [f"dangling list reference: {exc}"])
    spec_space = spec.match_space()

    missed = spec_space.subtract(guard).witness()
    if missed is not None:
        problems.append("stanza fails to match a route the spec covers")
        return VerificationResult(False, problems, missed)
    extra = guard.subtract(spec_space).witness()
    if extra is not None:
        problems.append("stanza matches a route outside the spec")
        return VerificationResult(False, problems, extra)

    actual_sets = transform_summary(stanza)
    expected_sets = _spec_sets_canonical(spec.sets)
    if spec.permit and actual_sets != expected_sets:
        problems.append(
            f"set clauses {actual_sets} do not implement spec sets "
            f"{expected_sets}"
        )
    if problems:
        return VerificationResult(False, problems)
    return VerificationResult(True)


def verify_acl_snippet(snippet: ConfigStore, spec: AclSpec) -> VerificationResult:
    """Verify a synthesised ACL snippet against its specification."""
    with obs.span("verify.acl") as sp:
        result = _verify_acl_snippet(snippet, spec)
        obs.count("verify.checks")
        if not result.ok:
            obs.count("verify.failures")
        sp.annotate(ok=result.ok)
        return result


def _verify_acl_snippet(snippet: ConfigStore, spec: AclSpec) -> VerificationResult:
    acls = list(snippet.acls())
    if len(acls) != 1:
        return VerificationResult(
            False, [f"snippet must define exactly one ACL, found {len(acls)}"]
        )
    acl = acls[0]
    if len(acl.rules) != 1:
        return VerificationResult(
            False,
            [f"snippet ACL {acl.name} must have exactly one rule, found {len(acl.rules)}"],
        )
    rule = acl.rules[0]

    problems: List[str] = []
    if rule.action != spec.action():
        problems.append(f"rule action is {rule.action}, spec wants {spec.action()}")

    guard = acl_guard_space(rule)
    spec_space = spec.match_space()
    missed = spec_space.subtract(guard).witness()
    if missed is not None:
        problems.append("rule fails to match a packet the spec covers")
        return VerificationResult(False, problems, missed)
    extra = guard.subtract(spec_space).witness()
    if extra is not None:
        problems.append("rule matches a packet outside the spec")
        return VerificationResult(False, problems, extra)

    if problems:
        return VerificationResult(False, problems)
    return VerificationResult(True)


__all__ = [
    "VerificationResult",
    "verify_acl_snippet",
    "verify_route_map_snippet",
]
