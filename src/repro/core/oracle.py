"""User oracles: who answers the disambiguator's questions.

The disambiguator presents a differential example — one concrete input
and the two candidate behaviours — and asks which behaviour is intended.
In production the answer comes from a human; in tests and in the Fig. 4
evaluation it comes from an oracle that knows the intended semantics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Protocol, Sequence, Union

from repro.analysis.compare import BehaviorDifference, PacketDifference
from repro.core.errors import DisambiguationError

Difference = Union[BehaviorDifference, PacketDifference]


@dataclasses.dataclass(frozen=True)
class DisambiguationQuestion:
    """One question shown to the user: a differential example."""

    difference: Difference

    def render(self) -> str:
        return (
            "The new rule's position changes behaviour on this input:\n\n"
            + self.difference.render()
            + "\n\nWhich behaviour do you want? [1/2]"
        )


class UserOracle(Protocol):
    """Anything that can answer disambiguation questions."""

    def choose(self, question: DisambiguationQuestion) -> int:
        """Return 1 to keep OPTION 1's behaviour, 2 for OPTION 2's."""
        ...


class ScriptedOracle:
    """Answers from a fixed list of choices (for tests and replays)."""

    def __init__(self, choices: Sequence[int]) -> None:
        for choice in choices:
            if choice not in (1, 2):
                raise ValueError(f"choices must be 1 or 2, got {choice!r}")
        self._choices = list(choices)
        self._cursor = 0

    def choose(self, question: DisambiguationQuestion) -> int:
        if self._cursor >= len(self._choices):
            raise DisambiguationError(
                "scripted oracle ran out of answers "
                f"(asked {self._cursor + 1} questions)"
            )
        choice = self._choices[self._cursor]
        self._cursor += 1
        return choice


class FirstOptionOracle:
    """Always prefers OPTION 1 (useful for smoke tests)."""

    def choose(self, question: DisambiguationQuestion) -> int:
        return 1


class IntentOracle:
    """Answers according to a ground-truth behaviour function.

    ``intended`` maps the differential input (a route or packet) to the
    behaviour key the user wants — typically obtained by evaluating a
    reference policy, as the Fig. 4 evaluation does.  If neither option
    matches the intended behaviour the oracle raises: the candidate set
    does not contain the user's intent, which is a pipeline bug.
    """

    def __init__(self, intended: Callable[[object], tuple]) -> None:
        self._intended = intended

    def choose(self, question: DisambiguationQuestion) -> int:
        difference = question.difference
        subject = difference.subject
        want = self._intended(subject)
        if difference.result_a.behaviour_key() == want:
            return 1
        if difference.result_b.behaviour_key() == want:
            return 2
        raise DisambiguationError(
            f"neither option implements the intended behaviour {want!r} "
            f"on {subject}"
        )


class CountingOracle:
    """Wraps an oracle, counting questions and recording a transcript.

    The question count is Figure 4's "#Disambiguation" column.
    """

    def __init__(self, inner: UserOracle) -> None:
        self._inner = inner
        self.questions: List[DisambiguationQuestion] = []
        self.answers: List[int] = []

    def choose(self, question: DisambiguationQuestion) -> int:
        answer = self._inner.choose(question)
        self.questions.append(question)
        self.answers.append(answer)
        return answer

    @property
    def question_count(self) -> int:
        return len(self.questions)

    def reset(self) -> None:
        self.questions.clear()
        self.answers.clear()


__all__ = [
    "CountingOracle",
    "DisambiguationQuestion",
    "FirstOptionOracle",
    "IntentOracle",
    "ScriptedOracle",
    "UserOracle",
]
