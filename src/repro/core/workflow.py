"""The Clarify session: the full cyclic workflow of Fig. 1.

A :class:`ClarifySession` owns a device's configuration store, an LLM
client (wrapped for transcripting), and a user oracle (wrapped for
question counting).  Each :meth:`ClarifySession.request` runs one cycle:
classify → retrieve prompts → synthesise+verify (with a user spec
confirmation, §2.1) → rename lists → disambiguate → insert, and returns
an :class:`UpdateReport` with the bookkeeping Figure 4 aggregates.

:meth:`ClarifySession.reuse` inserts an already-synthesised snippet into
another route-map or ACL without new LLM calls — the paper's
"some route-maps were reused because similar policies were applied on
interfaces, reducing the number of LLM calls" (§5).

Concurrency (re-entrancy audit, see ``docs/SERVING.md``): a
:class:`ClarifySession` is **not** thread-safe — ``request``/``reuse``
read and replace ``self.store`` and append to ``self.history``, so two
concurrent cycles on one session would race.  Callers running many
sessions concurrently must serialise the cycles of each session
(:class:`repro.serve.SessionManager` does, with per-session FIFO
ordering); *distinct* sessions may run in parallel freely: the only
mutable state they share is the LLM client (thread-safe by contract —
see :mod:`repro.llm.dedup`), the process-wide obs recorder (locked), and
the ambient journal (thread-local, so each worker journals its own
session).  Until an update's disambiguation completes, ``self.store`` is
never mutated — a cycle that fails (punt, deadline, error) leaves the
session exactly as it was.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # imported only for annotations; avoids a heavy import
    from repro.lint.netwide.gate import NetwideGate

from repro import obs
from repro.config.diff import config_diff
from repro.core.budget import TimeBudget, budget_scope
from repro.config.names import rename_snippet_lists
from repro.config.render import render_config
from repro.config.store import ConfigStore
from repro.core.disambiguator import (
    DisambiguationMode,
    disambiguate_acl_rule,
    disambiguate_stanza,
)
from repro.core.errors import ClarifyError
from repro.core.oracle import CountingOracle, FirstOptionOracle, UserOracle
from repro.core.synthesis import ROUTE_MAP, SynthesisPipeline
from repro.lint.gate import gate_insertion
from repro.llm.client import LLMClient
from repro.llm.simulated import SimulatedLLM
from repro.llm.transcript import TranscribingClient

#: Process-wide session identity, recorded in journal events so a replay
#: can group the cycles of multi-session journals (e.g. ``clarify eval``).
_SESSION_IDS = itertools.count(1)


def _journal_cycle_error(exc: ClarifyError) -> None:
    """Emit ``cycle.error`` with enough data to rebuild the outcome.

    ``attempts`` (:class:`~repro.core.errors.SynthesisPunt`) and
    ``questions`` (:class:`~repro.core.errors.DeadlineExceeded`) are
    stamped only when the exception carries them, so journals recorded
    before schema version 2 still replay without divergence.  The
    durable session store (:mod:`repro.serve.store`) reads these fields
    to reconstruct a failed request's :class:`ServeResponse` after a
    crash.
    """
    data: Dict[str, Any] = {"error": type(exc).__name__, "message": str(exc)}
    attempts = getattr(exc, "attempts", None)
    if attempts is not None:
        data["attempts"] = attempts
    questions = getattr(exc, "questions_asked", None)
    if questions is not None:
        data["questions"] = questions
    obs.event("cycle.error", **data)


@dataclasses.dataclass(frozen=True)
class UpdateReport:
    """What one Clarify cycle did."""

    kind: str
    target: str
    position: int
    llm_calls: int
    questions: int
    attempts: int
    overlaps: Tuple[int, ...]
    #: The verified, pre-rename snippet (reusable via ``reuse``).
    snippet: ConfigStore
    #: Unified diff of the device configuration this update applied.
    diff: str = ""
    #: Advisory lint-gate warnings (empty when the gate is off or clean).
    gate_warnings: Tuple[str, ...] = ()


class ClarifySession:
    """One interactive Clarify session over one device configuration."""

    def __init__(
        self,
        store: Optional[ConfigStore] = None,
        llm: Optional[LLMClient] = None,
        oracle: Optional[UserOracle] = None,
        mode: DisambiguationMode = DisambiguationMode.FULL,
        max_attempts: int = 3,
        lint_gate: bool = True,
        netwide_gate: Optional["NetwideGate"] = None,
        session_id: Optional[int] = None,
    ) -> None:
        self.store = store if store is not None else ConfigStore()
        #: Run the advisory :mod:`repro.lint` gate around each insertion.
        self.lint_gate = lint_gate
        #: Optional whole-network advisory gate (:mod:`repro.lint.netwide`):
        #: embeds the session store into a device set and reports the
        #: network-wide findings an update introduces, alongside the
        #: per-device gate's warnings.
        self.netwide_gate = netwide_gate
        self.llm = TranscribingClient(llm if llm is not None else SimulatedLLM())
        self.oracle = CountingOracle(
            oracle if oracle is not None else FirstOptionOracle()
        )
        self.mode = mode
        self.max_attempts = max_attempts
        self.pipeline = SynthesisPipeline(self.llm, max_attempts=max_attempts)
        #: Identity used to group this session's cycles in journal events.
        #: Allocated process-wide by default; the serving layer passes an
        #: explicit id so serial and pooled runs label cycles identically.
        self.session_id = (
            session_id if session_id is not None else next(_SESSION_IDS)
        )
        #: Specs shown to the user for manual confirmation (§2.1).
        self.spec_reviews = 0
        #: Audit trail: one :class:`UpdateReport` per applied update.
        self.history: list = []

    # ------------------------------------------------------------- cycles

    def request(
        self,
        intent_text: str,
        target: str,
        oracle: Optional[UserOracle] = None,
        budget: Optional[TimeBudget] = None,
    ) -> UpdateReport:
        """Run one full Clarify cycle for an English intent.

        ``target`` names the route-map or ACL the new stanza/rule should
        be added to (created on first use).  ``oracle`` overrides the
        session oracle for this request's disambiguation questions (the
        question count still accumulates on the session).  ``budget``
        installs a time budget for the cycle: expiry mid-synthesis punts
        with the failures so far, expiry mid-disambiguation raises
        :class:`~repro.core.errors.DeadlineExceeded` — in both cases the
        session's store is untouched.  The session's store is updated in
        place on success.
        """
        with budget_scope(budget), obs.span(
            "clarify.request", target=target
        ) as sp:
            obs.count("clarify.cycles")
            self._journal_cycle_start("request", target, intent=intent_text)
            try:
                calls_before = self.llm.call_count()
                result = self.pipeline.synthesize(intent_text)
                self.spec_reviews += 1
                obs.count("clarify.spec_reviews")
                report = self._insert(
                    result.kind,
                    result.snippet,
                    target,
                    oracle,
                    llm_calls=self.llm.call_count() - calls_before,
                    attempts=result.attempts,
                )
            except ClarifyError as exc:
                _journal_cycle_error(exc)
                raise
            sp.annotate(
                kind=report.kind,
                position=report.position,
                llm_calls=report.llm_calls,
                questions=report.questions,
                attempts=report.attempts,
            )
            return report

    def reuse(
        self,
        snippet: ConfigStore,
        target: str,
        oracle: Optional[UserOracle] = None,
        kind: str = ROUTE_MAP,
        budget: Optional[TimeBudget] = None,
    ) -> UpdateReport:
        """Insert an already-synthesised snippet into another target."""
        with budget_scope(budget), obs.span(
            "clarify.reuse", target=target, kind=kind
        ) as sp:
            obs.count("clarify.reuses")
            self._journal_cycle_start(
                "reuse", target, kind=kind, snippet=snippet
            )
            try:
                report = self._insert(
                    kind, snippet, target, oracle, llm_calls=0, attempts=0
                )
            except ClarifyError as exc:
                _journal_cycle_error(exc)
                raise
            sp.annotate(position=report.position, questions=report.questions)
            return report

    def _journal_cycle_start(
        self,
        op: str,
        target: str,
        intent: Optional[str] = None,
        kind: Optional[str] = None,
        snippet: Optional[ConfigStore] = None,
    ) -> None:
        """Record the inputs a replay needs to re-drive this cycle."""
        if not obs.journal_enabled():
            return
        config_text = render_config(self.store)
        data = {
            "op": op,
            "target": target,
            "session": self.session_id,
            "mode": self.mode.value,
            "max_attempts": self.max_attempts,
            "lint_gate": self.lint_gate,
            "config": config_text,
            "config_sha256": obs.sha256_text(config_text),
        }
        if intent is not None:
            data["intent"] = intent
        if kind is not None:
            data["kind"] = kind
        if snippet is not None:
            data["snippet"] = render_config(snippet)
        obs.event("cycle.start", **data)

    def _insert(
        self,
        kind: str,
        snippet: ConfigStore,
        target: str,
        oracle: Optional[UserOracle],
        llm_calls: int,
        attempts: int,
    ) -> UpdateReport:
        questions_before = self.oracle.question_count
        answering = self.oracle if oracle is None else _CountInto(self.oracle, oracle)
        with obs.span("clarify.rename"):
            renamed = rename_snippet_lists(snippet, self.store)
        before = self.store
        if kind == ROUTE_MAP:
            outcome = disambiguate_stanza(
                self.store, target, renamed, answering, self.mode
            )
        else:
            outcome = disambiguate_acl_rule(
                self.store, target, renamed, answering, self.mode
            )
        self.store = outcome.store
        with obs.span("clarify.diff"):
            diff_text = config_diff(before, self.store)
        gate_warnings: Tuple[str, ...] = ()
        if self.lint_gate:
            gate = gate_insertion(
                before, self.store, kind, target, outcome.position
            )
            gate_warnings = gate.warnings
        if self.netwide_gate is not None:
            gate_warnings = gate_warnings + self.netwide_gate.check(
                before, self.store
            )
        report = UpdateReport(
            kind=kind,
            target=target,
            position=outcome.position,
            llm_calls=llm_calls,
            questions=self.oracle.question_count - questions_before,
            attempts=attempts,
            overlaps=outcome.overlaps,
            snippet=snippet,
            diff=diff_text,
            gate_warnings=gate_warnings,
        )
        self.history.append(report)
        if obs.journal_enabled():
            obs.event(
                "insertion.decision",
                kind=kind,
                target=target,
                position=outcome.position,
                overlaps=list(outcome.overlaps),
            )
            final_config = render_config(self.store)
            obs.event(
                "cycle.end",
                report={
                    "kind": report.kind,
                    "target": report.target,
                    "position": report.position,
                    "llm_calls": report.llm_calls,
                    "questions": report.questions,
                    "attempts": report.attempts,
                    "overlaps": list(report.overlaps),
                    "gate_warnings": list(report.gate_warnings),
                },
                diff_sha256=obs.sha256_text(report.diff),
                config_sha256=obs.sha256_text(final_config),
            )
        return report

    # -------------------------------------------------------------- stats

    @property
    def total_llm_calls(self) -> int:
        return self.llm.call_count()

    @property
    def total_questions(self) -> int:
        return self.oracle.question_count

    @property
    def total_interactions(self) -> int:
        """Spec confirmations plus disambiguation questions (Fig. 4)."""
        return self.spec_reviews + self.oracle.question_count


class _CountInto:
    """Answer with ``answerer`` but record on the session's counter."""

    def __init__(self, counter: CountingOracle, answerer: UserOracle) -> None:
        self._counter = counter
        self._answerer = answerer

    def choose(self, question):
        answer = self._answerer.choose(question)
        self._counter.questions.append(question)
        self._counter.answers.append(answer)
        return answer


__all__ = ["ClarifySession", "UpdateReport"]
