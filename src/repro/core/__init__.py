"""Clarify: incremental synthesis with verification and disambiguation.

This package is the paper's primary contribution (Fig. 1):

1. the user's English intent is classified (ACL vs route-map) and the
   matching prompts/examples are retrieved (:mod:`repro.core.synthesis`);
2. the LLM synthesises one stanza in isolation, which is verified against
   an LLM-extracted JSON specification with counterexample feedback and a
   retry threshold (:mod:`repro.core.spec`, :mod:`repro.core.verify`);
3. the **disambiguator** decides where the stanza belongs in the existing
   policy by binary-searching the overlapping stanzas and asking the user
   differential questions (:mod:`repro.core.disambiguator`,
   :mod:`repro.core.oracle`);
4. the stanza is inserted with ancillary-list renaming and stanza
   renumbering (:mod:`repro.core.insertion`).

:class:`~repro.core.workflow.ClarifySession` ties the loop together.
"""

from repro.core.budget import (
    TimeBudget,
    budget_scope,
    check_budget,
    current_budget,
)
from repro.core.disambiguator import (
    DisambiguationMode,
    DisambiguationQuestion,
    DisambiguationResult,
    disambiguate_acl_rule,
    disambiguate_stanza,
)
from repro.core.errors import (
    ClarifyError,
    DeadlineExceeded,
    DisambiguationError,
    SpecError,
    SynthesisPunt,
)
from repro.core.insertion import (
    insert_rule_into_acl,
    insert_stanza_into_store,
)
from repro.core.listinsert import (
    ListInsertionResult,
    disambiguate_as_path_entry,
    disambiguate_community_entry,
    disambiguate_prefix_list_entry,
)
from repro.core.oracle import (
    CountingOracle,
    FirstOptionOracle,
    IntentOracle,
    ScriptedOracle,
    UserOracle,
)
from repro.core.spec import AclSpec, RouteMapSpec
from repro.core.synthesis import SynthesisPipeline, SynthesisResult
from repro.core.verify import (
    VerificationResult,
    verify_acl_snippet,
    verify_route_map_snippet,
)
from repro.core.workflow import ClarifySession, UpdateReport

__all__ = [
    "AclSpec",
    "ClarifyError",
    "ClarifySession",
    "CountingOracle",
    "DeadlineExceeded",
    "DisambiguationError",
    "DisambiguationMode",
    "DisambiguationQuestion",
    "DisambiguationResult",
    "FirstOptionOracle",
    "IntentOracle",
    "ListInsertionResult",
    "RouteMapSpec",
    "ScriptedOracle",
    "SpecError",
    "SynthesisPipeline",
    "SynthesisPunt",
    "SynthesisResult",
    "TimeBudget",
    "UpdateReport",
    "UserOracle",
    "VerificationResult",
    "budget_scope",
    "check_budget",
    "current_budget",
    "disambiguate_acl_rule",
    "disambiguate_as_path_entry",
    "disambiguate_community_entry",
    "disambiguate_prefix_list_entry",
    "disambiguate_stanza",
    "insert_rule_into_acl",
    "insert_stanza_into_store",
    "verify_acl_snippet",
    "verify_route_map_snippet",
]
