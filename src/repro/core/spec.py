"""The JSON specification model (Fig. 1, step 3).

The LLM extracts a JSON specification from the user's prompt; the user
eyeballs it ("which for one stanza is easy to cross-check", §2.1); the
verifier then checks the synthesised stanza against it symbolically.
The format follows the paper's example::

    {"permit": true,
     "prefix": ["100.0.0.0/16:16-23"],
     "community": "/_300:3_/",
     "set": {"metric": 55}}

plus the analogous ACL form (see :class:`AclSpec`).
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.headerspace import PacketRegion, PacketSpace
from repro.analysis.prefixspace import PrefixAtom, PrefixSpace
from repro.analysis.routespace import RouteRegion, RouteSpace
from repro.config.acl import FULL_PORT_RANGE
from repro.core.errors import SpecError
from repro.netaddr import IntervalSet, Ipv4Prefix
from repro.route.packet import PROTOCOL_NUMBERS

_PREFIX_RANGE = re.compile(r"^(\d+\.\d+\.\d+\.\d+/\d+):(\d+)-(\d+)$")
_REGEX_FORM = re.compile(r"^/(.*)/$")
_PORT_RANGE = re.compile(r"^(\d+)-(\d+)$")

#: Transform keys allowed in a spec's "set" object.
_SET_KEYS = frozenset(
    {
        "metric",
        "local_preference",
        "community",
        "community_additive",
        "next_hop",
        "prepend",
        "tag",
        "weight",
    }
)


def _parse_regex_form(value: object, what: str) -> str:
    if not isinstance(value, str):
        raise SpecError(f"{what} must be a /regex/ string, got {value!r}")
    match = _REGEX_FORM.match(value)
    if match is None:
        raise SpecError(f"{what} must be wrapped in slashes, got {value!r}")
    return match.group(1)


@dataclasses.dataclass(frozen=True)
class RouteMapSpec:
    """A parsed route-map stanza specification."""

    permit: bool
    #: (prefix, lo, hi) constraints; any one may match (disjunctive).
    prefixes: Tuple[Tuple[Ipv4Prefix, int, int], ...] = ()
    #: Community regexes that must all be carried (conjunctive).
    communities: Tuple[str, ...] = ()
    as_path: Optional[str] = None
    local_preference: Optional[int] = None
    metric: Optional[int] = None
    tag: Optional[int] = None
    #: Canonical transform mapping (same shape the verifier derives from
    #: set clauses).
    sets: Dict[str, object] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_json(cls, text: str) -> "RouteMapSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"specification is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise SpecError("specification must be a JSON object")
        known = {
            "permit",
            "prefix",
            "community",
            "as_path",
            "local_preference",
            "metric",
            "tag",
            "set",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown specification keys: {sorted(unknown)}")
        if "permit" not in data or not isinstance(data["permit"], bool):
            raise SpecError('specification needs a boolean "permit" key')

        prefixes: List[Tuple[Ipv4Prefix, int, int]] = []
        for item in data.get("prefix", []):
            match = _PREFIX_RANGE.match(item) if isinstance(item, str) else None
            if match is None:
                raise SpecError(
                    f'prefix entries must look like "P/len:lo-hi", got {item!r}'
                )
            try:
                prefix = Ipv4Prefix.parse(match.group(1))
            except ValueError as exc:
                raise SpecError(str(exc)) from None
            lo, hi = int(match.group(2)), int(match.group(3))
            if not prefix.length <= lo <= hi <= 32:
                raise SpecError(f"bad length window in {item!r}")
            prefixes.append((prefix, lo, hi))

        communities: List[str] = []
        raw_community = data.get("community")
        if raw_community is not None:
            items = raw_community if isinstance(raw_community, list) else [raw_community]
            communities = [
                _parse_regex_form(item, "community") for item in items
            ]

        as_path = None
        if data.get("as_path") is not None:
            as_path = _parse_regex_form(data["as_path"], "as_path")

        for scalar in ("local_preference", "metric", "tag"):
            value = data.get(scalar)
            if value is not None and not isinstance(value, int):
                raise SpecError(f"{scalar} must be an integer")
        local_preference = data.get("local_preference")

        sets = dict(data.get("set", {}))
        unknown_sets = set(sets) - _SET_KEYS
        if unknown_sets:
            raise SpecError(f"unknown set keys: {sorted(unknown_sets)}")
        if "community" in sets:
            if not isinstance(sets["community"], list):
                raise SpecError('set "community" must be a list')
            sets["community"] = tuple(sorted(sets["community"]))
            sets["community_additive"] = bool(sets.get("community_additive", False))
        if "prepend" in sets:
            if not isinstance(sets["prepend"], list):
                raise SpecError('set "prepend" must be a list of ASNs')
            sets["prepend"] = tuple(int(a) for a in sets["prepend"])

        return cls(
            permit=data["permit"],
            prefixes=tuple(prefixes),
            communities=tuple(communities),
            as_path=as_path,
            local_preference=local_preference,
            metric=data.get("metric"),
            tag=data.get("tag"),
            sets=sets,
        )

    def action(self) -> str:
        return "permit" if self.permit else "deny"

    def match_space(self) -> RouteSpace:
        """The symbolic set of routes the spec's match conditions accept."""
        def scalar(value: Optional[int]) -> IntervalSet:
            if value is None:
                return IntervalSet.closed(0, 0xFFFFFFFF)
            return IntervalSet.single(value)

        base = RouteRegion(
            communities_required=frozenset(self.communities),
            as_path_required=(
                frozenset((self.as_path,)) if self.as_path else frozenset()
            ),
            local_preference=scalar(self.local_preference),
            metric=scalar(self.metric),
            tag=scalar(self.tag),
        )
        if not self.prefixes:
            return RouteSpace.of(base)
        regions = []
        for prefix, lo, hi in self.prefixes:
            space = PrefixSpace.of_atom(PrefixAtom(prefix, lo, hi))
            regions.append(dataclasses.replace(base, prefix=space))
        return RouteSpace(tuple(regions))


@dataclasses.dataclass(frozen=True)
class AclSpec:
    """A parsed ACL rule specification."""

    permit: bool
    protocol: Optional[str] = None
    src: Optional[Ipv4Prefix] = None
    dst: Optional[Ipv4Prefix] = None
    src_ports: Tuple[Tuple[int, int], ...] = ()
    dst_ports: Tuple[Tuple[int, int], ...] = ()
    established: bool = False

    @classmethod
    def from_json(cls, text: str) -> "AclSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"specification is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise SpecError("specification must be a JSON object")
        known = {
            "permit",
            "protocol",
            "src",
            "dst",
            "src_ports",
            "dst_ports",
            "established",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown specification keys: {sorted(unknown)}")
        if "permit" not in data or not isinstance(data["permit"], bool):
            raise SpecError('specification needs a boolean "permit" key')

        protocol = data.get("protocol")
        if protocol is not None and protocol not in PROTOCOL_NUMBERS:
            raise SpecError(f"unknown protocol {protocol!r}")

        def endpoint(key: str) -> Optional[Ipv4Prefix]:
            value = data.get(key)
            if value in (None, "any"):
                return None
            try:
                return Ipv4Prefix.parse(value)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"bad {key}: {exc}") from None

        def ports(key: str) -> Tuple[Tuple[int, int], ...]:
            out = []
            for item in data.get(key, []):
                match = _PORT_RANGE.match(item) if isinstance(item, str) else None
                if match is None:
                    raise SpecError(f'{key} entries must look like "lo-hi"')
                lo, hi = int(match.group(1)), int(match.group(2))
                if not 0 <= lo <= hi <= 65535:
                    raise SpecError(f"bad port range {item!r}")
                out.append((lo, hi))
            return tuple(out)

        return cls(
            permit=data["permit"],
            protocol=protocol,
            src=endpoint("src"),
            dst=endpoint("dst"),
            src_ports=ports("src_ports"),
            dst_ports=ports("dst_ports"),
            established=bool(data.get("established", False)),
        )

    def action(self) -> str:
        return "permit" if self.permit else "deny"

    def match_space(self) -> PacketSpace:
        """The symbolic set of packets the spec's match conditions accept."""

        def addr_intervals(prefix: Optional[Ipv4Prefix]) -> IntervalSet:
            if prefix is None:
                return IntervalSet.closed(0, 0xFFFFFFFF)
            return IntervalSet.closed(
                prefix.first_address().value, prefix.last_address().value
            )

        def port_intervals(ranges: Tuple[Tuple[int, int], ...]) -> IntervalSet:
            if not ranges:
                return FULL_PORT_RANGE
            return IntervalSet.from_pairs(list(ranges))

        protocol = (
            IntervalSet.single(PROTOCOL_NUMBERS[self.protocol])
            if self.protocol is not None
            else IntervalSet.closed(0, 255)
        )
        region = PacketRegion(
            src=addr_intervals(self.src),
            dst=addr_intervals(self.dst),
            protocol=protocol,
            src_ports=port_intervals(self.src_ports),
            dst_ports=port_intervals(self.dst_ports),
            established=(
                frozenset((True,)) if self.established else frozenset((True, False))
            ),
        )
        return PacketSpace.of(region)


__all__ = ["AclSpec", "RouteMapSpec"]
