"""The disambiguator (§4): where does the new rule go?

Algorithm, following the paper:

1. Collect the existing rules whose match space *overlaps* the new
   rule's (there exists an input matching both) — only relative order
   with these rules can change behaviour.
2. Binary-search the insertion slot: pick the middle overlapping rule,
   build the two candidate policies with the new rule immediately before
   vs immediately after it, and ask the user to choose between the
   behaviours on a differential example.  Each answer halves the
   candidate range, so the user is queried a logarithmic number of
   times.
3. If the before/after candidates for some overlapping rule are
   behaviourally equivalent (an overlap in match space with no observable
   consequence), that rule is dropped from the candidate set without
   consuming a user question.

Two modes are provided: ``FULL`` implements the paper's §4 algorithm over
every insertion point; ``TOP_BOTTOM`` reproduces the prototype's
restriction to inserting at the top or the bottom (§2.2), asking at most
one question.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.budget import check_budget
from repro.analysis.compare import (
    BehaviorDifference,
    PacketDifference,
    compare_filters,
    compare_route_policies,
)
from repro.analysis.headerspace import acl_guard_space
from repro.analysis.routespace import stanza_guard_space
from repro.config.acl import Acl
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore
from repro.core.insertion import (
    insert_rule_into_acl,
    insert_stanza_into_store,
    merge_snippet_lists,
    snippet_rule,
    snippet_stanza,
)
from repro.core.oracle import DisambiguationQuestion, UserOracle


class DisambiguationMode(enum.Enum):
    """Which insertion points the disambiguator considers and how.

    ``FULL`` is the §4 algorithm (binary search over every insertion
    point); ``TOP_BOTTOM`` is the paper's prototype restriction (§2.2);
    ``LINEAR`` is an ablation baseline that scans the overlapping rules
    top-down with one question each.
    """

    FULL = "full"
    TOP_BOTTOM = "top-bottom"
    LINEAR = "linear"


@dataclasses.dataclass(frozen=True)
class DisambiguationResult:
    """The outcome of one disambiguation run."""

    #: Final insertion position (index into the stanza/rule list).
    position: int
    #: The questions the user was asked, in order.
    questions: Tuple[DisambiguationQuestion, ...]
    #: Indices of existing stanzas/rules overlapping the new one.
    overlaps: Tuple[int, ...]
    #: The updated store after insertion.
    store: ConfigStore

    @property
    def question_count(self) -> int:
        return len(self.questions)


# --------------------------------------------------------------- generic


def _binary_search_slot(
    overlaps: Sequence[int],
    slot_to_position: Callable[[List[int], int], int],
    build_candidate: Callable[[int], object],
    diff: Callable[[object, object], Optional[object]],
    oracle: UserOracle,
) -> Tuple[int, List[DisambiguationQuestion]]:
    """Binary search over insertion slots; returns (position, questions).

    ``overlaps`` are indices of overlapping rules in the original policy;
    the slots are 0..len(active) where slot j means "immediately before
    active[j]" (and the last slot means "after the last active overlap").

    Deadline-aware: before building each candidate pair the ambient
    :class:`~repro.core.budget.TimeBudget` is checked;
    :class:`~repro.core.errors.DeadlineExceeded` carries the number of
    questions already asked, and the caller's store is left untouched
    (a graceful partial result — see :mod:`repro.core.budget`).
    """
    active = list(overlaps)
    questions: List[DisambiguationQuestion] = []
    lo, hi = 0, len(active)
    while lo < hi:
        check_budget("disambiguation", questions_asked=len(questions))
        mid = (lo + hi) // 2
        before = build_candidate(slot_to_position(active, mid))
        after = build_candidate(slot_to_position(active, mid + 1))
        obs.count("disambiguation.candidates", 2)
        difference = diff(before, after)
        if difference is None:
            # Relative order with active[mid] is unobservable: discard it.
            obs.count("disambiguation.pruned")
            del active[mid]
            hi -= 1
            continue
        question = DisambiguationQuestion(difference)
        choice = oracle.choose(question)
        questions.append(question)
        _record_question(question, choice)
        if choice == 1:
            hi = mid
        else:
            lo = mid + 1
    return slot_to_position(active, lo), questions


def _linear_scan_slot(
    overlaps: Sequence[int],
    slot_to_position: Callable[[List[int], int], int],
    build_candidate: Callable[[int], object],
    diff: Callable[[object, object], Optional[object]],
    oracle: UserOracle,
) -> Tuple[int, List[DisambiguationQuestion]]:
    """Ablation baseline: walk the overlaps top-down, one question each.

    Asks, for each overlapping rule in order, whether the new rule should
    go before it; stops at the first "before".  Worst case ``k`` questions
    versus binary search's ``ceil(log2(k+1))``.
    """
    active = list(overlaps)
    questions: List[DisambiguationQuestion] = []
    slot = 0
    while slot < len(active):
        check_budget("disambiguation", questions_asked=len(questions))
        before = build_candidate(slot_to_position(active, slot))
        after = build_candidate(slot_to_position(active, slot + 1))
        obs.count("disambiguation.candidates", 2)
        difference = diff(before, after)
        if difference is None:
            obs.count("disambiguation.pruned")
            del active[slot]
            continue
        question = DisambiguationQuestion(difference)
        choice = oracle.choose(question)
        questions.append(question)
        _record_question(question, choice)
        if choice == 1:
            return slot_to_position(active, slot), questions
        slot += 1
    return slot_to_position(active, slot), questions


def _record_question(question: DisambiguationQuestion, choice: int) -> None:
    """Journal one differential question and the oracle/user's answer."""
    if obs.journal_enabled():
        obs.event(
            "disambiguation.question",
            question=question.render(),
            answer=choice,
        )


def _record_run(sp, overlaps, questions, position) -> None:
    """Metric bookkeeping shared by every disambiguation entry point."""
    obs.count("disambiguation.runs")
    obs.count("disambiguation.questions", len(questions))
    obs.observe("disambiguation.overlaps", len(overlaps))
    obs.observe("disambiguation.search_depth", len(questions))
    sp.annotate(
        overlaps=len(overlaps), questions=len(questions), position=position
    )


def _slot_to_position(active: List[int], slot: int) -> int:
    if not active:
        # No (remaining) overlaps: every position is equivalent; the tool
        # appends at the bottom, leaving existing behaviour untouched.
        return -1  # sentinel; caller replaces with len(policy)
    if slot < len(active):
        return active[slot]
    return active[-1] + 1


# ------------------------------------------------------------ route maps


def route_map_overlaps(
    route_map: RouteMap, store: ConfigStore, snippet: ConfigStore
) -> List[int]:
    """Indices of stanzas whose match space overlaps the new stanza's."""
    merged = merge_snippet_lists(store, snippet)
    new_guard = stanza_guard_space(snippet_stanza(snippet), merged)
    overlaps = []
    for idx, stanza in enumerate(route_map.stanzas):
        guard = stanza_guard_space(stanza, merged)
        if not guard.intersect(new_guard).is_empty():
            overlaps.append(idx)
    return overlaps


def disambiguate_stanza(
    store: ConfigStore,
    route_map_name: str,
    snippet: ConfigStore,
    oracle: UserOracle,
    mode: DisambiguationMode = DisambiguationMode.FULL,
) -> DisambiguationResult:
    """Determine where the snippet's stanza belongs and insert it.

    The snippet's ancillary lists must already be renamed to avoid
    collisions (see :func:`repro.config.names.rename_snippet_lists`);
    :class:`repro.core.workflow.ClarifySession` does this automatically.
    """
    with obs.span(
        "disambiguate.stanza", target=route_map_name, mode=mode.value
    ) as sp:
        target = (
            store.route_map(route_map_name)
            if store.has_route_map(route_map_name)
            else RouteMap(route_map_name, ())
        )

        def build(position: int) -> Tuple[ConfigStore, RouteMap]:
            real = len(target.stanzas) if position == -1 else position
            return insert_stanza_into_store(store, route_map_name, snippet, real)

        def diff(
            a: Tuple[ConfigStore, RouteMap], b: Tuple[ConfigStore, RouteMap]
        ) -> Optional[BehaviorDifference]:
            differences = compare_route_policies(
                a[1], b[1], a[0], b[0], max_differences=1
            )
            return differences[0] if differences else None

        overlaps = route_map_overlaps(target, store, snippet)
        if mode is DisambiguationMode.TOP_BOTTOM:
            position, questions = _top_bottom(
                len(target.stanzas), build, diff, oracle
            )
        else:
            search = (
                _linear_scan_slot
                if mode is DisambiguationMode.LINEAR
                else _binary_search_slot
            )
            position, questions = search(
                overlaps, _slot_to_position, build, diff, oracle
            )
            if position == -1:
                position = len(target.stanzas)
        final_store, _updated = build(position)
        _record_run(sp, overlaps, questions, position)
        return DisambiguationResult(
            position=position,
            questions=tuple(questions),
            overlaps=tuple(overlaps),
            store=final_store,
        )


def _top_bottom(
    bottom: int,
    build_candidate: Callable[[int], object],
    diff: Callable[[object, object], Optional[object]],
    oracle: UserOracle,
) -> Tuple[int, List[DisambiguationQuestion]]:
    """The prototype's two-candidate mode (§2.2): top or bottom only."""
    if bottom == 0:
        return 0, []
    top_candidate = build_candidate(0)
    bottom_candidate = build_candidate(bottom)
    obs.count("disambiguation.candidates", 2)
    difference = diff(top_candidate, bottom_candidate)
    if difference is None:
        obs.count("disambiguation.pruned")
        return bottom, []
    question = DisambiguationQuestion(difference)
    choice = oracle.choose(question)
    _record_question(question, choice)
    return (0 if choice == 1 else bottom), [question]


# ------------------------------------------------------------------ ACLs


def acl_overlaps(acl: Acl, snippet: ConfigStore) -> List[int]:
    """Indices of ACL rules whose match space overlaps the new rule's."""
    new_guard = acl_guard_space(snippet_rule(snippet))
    overlaps = []
    for idx, rule in enumerate(acl.rules):
        if not acl_guard_space(rule).intersect(new_guard).is_empty():
            overlaps.append(idx)
    return overlaps


def disambiguate_acl_rule(
    store: ConfigStore,
    acl_name: str,
    snippet: ConfigStore,
    oracle: UserOracle,
    mode: DisambiguationMode = DisambiguationMode.FULL,
) -> DisambiguationResult:
    """Determine where the snippet's ACL rule belongs and insert it."""
    with obs.span("disambiguate.acl", target=acl_name, mode=mode.value) as sp:
        target = (
            store.acl(acl_name) if store.has_acl(acl_name) else Acl(acl_name, ())
        )

        def build(position: int) -> Tuple[ConfigStore, Acl]:
            real = len(target.rules) if position == -1 else position
            return insert_rule_into_acl(store, acl_name, snippet, real)

        def diff(
            a: Tuple[ConfigStore, Acl], b: Tuple[ConfigStore, Acl]
        ) -> Optional[PacketDifference]:
            differences = compare_filters(a[1], b[1], max_differences=1)
            return differences[0] if differences else None

        overlaps = acl_overlaps(target, snippet)
        if mode is DisambiguationMode.TOP_BOTTOM:
            position, questions = _top_bottom(len(target.rules), build, diff, oracle)
        else:
            search = (
                _linear_scan_slot
                if mode is DisambiguationMode.LINEAR
                else _binary_search_slot
            )
            position, questions = search(
                overlaps, _slot_to_position, build, diff, oracle
            )
            if position == -1:
                position = len(target.rules)
        final_store, _updated = build(position)
        _record_run(sp, overlaps, questions, position)
        return DisambiguationResult(
            position=position,
            questions=tuple(questions),
            overlaps=tuple(overlaps),
            store=final_store,
        )


__all__ = [
    "DisambiguationMode",
    "DisambiguationQuestion",
    "DisambiguationResult",
    "acl_overlaps",
    "disambiguate_acl_rule",
    "disambiguate_stanza",
    "route_map_overlaps",
]
