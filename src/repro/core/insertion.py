"""Snippet insertion: merging lists and splicing the new stanza/rule.

The snippet arrives as its own little :class:`ConfigStore` (one stanza
under a fresh route-map name, plus the ancillary lists it references).
Insertion merges the lists into the target configuration — the caller
renames them first via :func:`repro.config.names.rename_snippet_lists` —
and splices the stanza into the target route-map at a given position,
renumbering sequence numbers (Fig. 2).
"""

from __future__ import annotations

from typing import Tuple

from repro.config.acl import Acl, AclRule
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore


def snippet_stanza(snippet: ConfigStore) -> RouteMapStanza:
    """The single stanza of a verified route-map snippet."""
    route_maps = list(snippet.route_maps())
    if len(route_maps) != 1 or len(route_maps[0].stanzas) != 1:
        raise ValueError("snippet must define exactly one one-stanza route-map")
    return route_maps[0].stanzas[0]


def snippet_rule(snippet: ConfigStore) -> AclRule:
    """The single rule of a verified ACL snippet."""
    acls = list(snippet.acls())
    if len(acls) != 1 or len(acls[0].rules) != 1:
        raise ValueError("snippet must define exactly one one-rule ACL")
    return acls[0].rules[0]


def merge_snippet_lists(store: ConfigStore, snippet: ConfigStore) -> ConfigStore:
    """A copy of ``store`` plus the snippet's (already renamed) lists."""
    merged = store.copy()
    for pl in snippet.prefix_lists():
        merged.add_prefix_list(pl)
    for cl in snippet.community_lists():
        merged.add_community_list(cl)
    for al in snippet.as_path_lists():
        merged.add_as_path_list(al)
    return merged


def insert_stanza_into_store(
    store: ConfigStore,
    route_map_name: str,
    snippet: ConfigStore,
    position: int,
) -> Tuple[ConfigStore, RouteMap]:
    """Insert the snippet's stanza into ``route_map_name`` at ``position``.

    Creates the route-map if it does not exist yet (the incremental
    from-scratch workflow of §5 starts with empty route-maps).  Returns
    the new store and the updated route-map.
    """
    merged = merge_snippet_lists(store, snippet)
    if merged.has_route_map(route_map_name):
        target = merged.route_map(route_map_name)
    else:
        target = RouteMap(route_map_name, ())
    updated = target.insert(snippet_stanza(snippet), position)
    merged.add_route_map(updated, replace=True)
    return merged, updated


def insert_rule_into_acl(
    store: ConfigStore,
    acl_name: str,
    snippet: ConfigStore,
    position: int,
) -> Tuple[ConfigStore, Acl]:
    """Insert the snippet's rule into ``acl_name`` at ``position``."""
    merged = merge_snippet_lists(store, snippet)
    if merged.has_acl(acl_name):
        target = merged.acl(acl_name)
    else:
        target = Acl(acl_name, ())
    updated = target.insert(snippet_rule(snippet), position)
    merged.add_acl(updated, replace=True)
    return merged, updated


__all__ = [
    "insert_rule_into_acl",
    "insert_stanza_into_store",
    "merge_snippet_lists",
    "snippet_rule",
    "snippet_stanza",
]
