"""eBGP propagation to a fixpoint.

Semantics (deliberately the textbook subset the Figure 3 check needs):

* Each router advertises, per neighbor, its *best* route per prefix plus
  its own originations, through the per-neighbor export route-map chain
  (every map in the chain must permit; transforms compose in order).
* Crossing an eBGP session prepends the sender's ASN; local preference
  does not cross (reset to the default and then optionally set by the
  receiver's import policy, the standard eBGP behaviour).
* The receiver drops routes whose AS path contains its own ASN (loop
  prevention) and runs its import chain.
* Best path: highest weight, then highest local preference, then locally
  originated, then shortest AS path, then lowest metric, then lowest
  neighbor router-id — a deterministic prefix of the IOS decision
  process.
* Synchronous rounds until nothing changes; non-convergence raises.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.evaluate import eval_route_map
from repro.bgp.topology import Network, Router
from repro.netaddr import Ipv4Prefix
from repro.route import BgpRoute
from repro.route.bgproute import DEFAULT_LOCAL_PREFERENCE


class ConvergenceError(RuntimeError):
    """The network did not reach a fixpoint within the iteration bound."""


@dataclasses.dataclass(frozen=True)
class RibEntry:
    """One installed best route."""

    route: BgpRoute
    #: Neighbor the route was learned from; None for local originations.
    learned_from: Optional[str]


#: router name -> prefix -> best entry
Ribs = Dict[str, Dict[Ipv4Prefix, RibEntry]]


def _apply_chain(
    router: Router, chain: Tuple[str, ...], route: BgpRoute
) -> Optional[BgpRoute]:
    """Run a route through an ordered route-map chain; None if denied."""
    for name in chain:
        result = eval_route_map(router.store.route_map(name), router.store, route)
        if not result.permitted():
            return None
        route = result.output
    return route


def _preference_key(entry: RibEntry, router: Router) -> Tuple:
    route = entry.route
    neighbor_id = (
        0 if entry.learned_from is None else hash(entry.learned_from) % (1 << 30)
    )
    return (
        -route.weight,
        -route.local_preference,
        0 if entry.learned_from is None else 1,
        len(route.asns()),
        route.metric,
        entry.learned_from or "",
    )


def _select_best(
    router: Router, candidates: List[RibEntry]
) -> Optional[RibEntry]:
    if not candidates:
        return None
    return min(candidates, key=lambda e: _preference_key(e, router))


def simulate(network: Network, max_iterations: int = 64) -> Ribs:
    """Propagate routes to a fixpoint and return each router's best RIB."""
    with obs.span("bgp.simulate", routers=len(network.routers)) as sp:
        obs.count("bgp.simulations")
        ribs, iterations = _simulate(network, max_iterations)
        obs.observe("bgp.iterations", iterations)
        sp.annotate(iterations=iterations)
        return ribs


def _simulate(network: Network, max_iterations: int) -> Tuple[Ribs, int]:
    """The fixpoint loop; returns (ribs, rounds until convergence)."""
    # adj_rib_in[v][prefix][u] = route as accepted by v from u
    adj_rib_in: Dict[str, Dict[Ipv4Prefix, Dict[str, BgpRoute]]] = {
        name: {} for name in network.routers
    }

    def best_rib(name: str) -> Dict[Ipv4Prefix, RibEntry]:
        router = network.router(name)
        rib: Dict[Ipv4Prefix, RibEntry] = {}
        prefixes = set(adj_rib_in[name])
        prefixes.update(r.network for r in router.originated)
        for prefix in prefixes:
            candidates = [
                RibEntry(route, None)
                for route in router.originated
                if route.network == prefix
            ]
            for neighbor, route in adj_rib_in[name].get(prefix, {}).items():
                candidates.append(RibEntry(route, neighbor))
            best = _select_best(router, candidates)
            if best is not None:
                rib[prefix] = best
        return rib

    previous: Ribs = {name: best_rib(name) for name in network.routers}
    for iteration in range(1, max_iterations + 1):
        changed = False
        for sender_name in sorted(network.routers):
            sender = network.router(sender_name)
            for receiver_name in network.neighbors(sender_name):
                receiver = network.router(receiver_name)
                offered: Dict[Ipv4Prefix, BgpRoute] = {}
                for prefix, entry in previous[sender_name].items():
                    if entry.learned_from == receiver_name:
                        continue  # split horizon
                    route = entry.route
                    exported = _apply_chain(
                        sender,
                        sender.export_policies.get(receiver_name, ()),
                        route,
                    )
                    if exported is None:
                        continue
                    if sender.asn != receiver.asn:
                        exported = exported.prepend((sender.asn,))
                        # Local preference and weight are local attributes
                        # and do not cross an eBGP boundary.
                        exported = exported.with_updates(
                            local_preference=DEFAULT_LOCAL_PREFERENCE, weight=0
                        )
                    if receiver.asn in exported.asns():
                        continue  # loop prevention
                    imported = _apply_chain(
                        receiver,
                        receiver.import_policies.get(sender_name, ()),
                        exported,
                    )
                    if imported is None:
                        continue
                    offered[prefix] = imported
                # Replace the sender's column in the receiver's Adj-RIB-In.
                for prefix in list(adj_rib_in[receiver_name]):
                    column = adj_rib_in[receiver_name][prefix]
                    if sender_name in column and prefix not in offered:
                        del column[sender_name]
                        changed = True
                for prefix, route in offered.items():
                    column = adj_rib_in[receiver_name].setdefault(prefix, {})
                    if column.get(sender_name) != route:
                        column[sender_name] = route
                        changed = True
        current: Ribs = {name: best_rib(name) for name in network.routers}
        if not changed and current == previous:
            return current, iteration
        previous = current
    raise ConvergenceError(
        f"no fixpoint after {max_iterations} iterations; "
        "the policy set likely oscillates"
    )


__all__ = ["ConvergenceError", "RibEntry", "Ribs", "simulate"]
