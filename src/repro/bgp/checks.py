"""Reachability queries over simulated RIBs (the global-policy checks)."""

from __future__ import annotations

from typing import List, Optional

from repro.bgp.simulate import RibEntry, Ribs
from repro.netaddr import Ipv4Prefix


def has_route(ribs: Ribs, router: str, prefix: str) -> bool:
    """Does ``router`` have any route for ``prefix``?"""
    return Ipv4Prefix.parse(prefix) in ribs[router]


def best_entry(ribs: Ribs, router: str, prefix: str) -> Optional[RibEntry]:
    return ribs[router].get(Ipv4Prefix.parse(prefix))


def learned_from(ribs: Ribs, router: str, prefix: str) -> Optional[str]:
    """Which neighbor the installed route came from (None if local/absent)."""
    entry = best_entry(ribs, router, prefix)
    return entry.learned_from if entry is not None else None


def visible_prefixes(ribs: Ribs, router: str) -> List[str]:
    return sorted(str(p) for p in ribs[router])


def as_path_at(ribs: Ribs, router: str, prefix: str) -> Optional[List[int]]:
    entry = best_entry(ribs, router, prefix)
    return entry.route.asns() if entry is not None else None


__all__ = [
    "as_path_at",
    "best_entry",
    "has_route",
    "learned_from",
    "visible_prefixes",
]
