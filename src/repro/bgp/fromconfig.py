"""Building a simulatable network from device configuration files.

This closes the loop the paper implies: Clarify edits *configurations*,
and the behavioural checks run on the *network* those configurations
define.  :func:`network_from_devices` pairs up BGP neighbors by address
(a session exists when each device points at an address owned by the
other and the remote-as values agree), attaches the per-neighbor
route-map chains, and applies ``network`` originations through their
optional origination route-maps.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.evaluate import eval_route_map
from repro.bgp.topology import Network
from repro.config.device import DeviceConfig
from repro.netaddr import Ipv4Address
from repro.route import BgpRoute


class TopologyError(ValueError):
    """The device set does not describe a coherent topology."""


def network_from_devices(devices: Sequence[DeviceConfig]) -> Network:
    """Assemble a :class:`Network` from parsed device configurations."""
    net = Network()
    owner_of: Dict[Ipv4Address, str] = {}
    for index, device in enumerate(devices):
        if device.bgp is None:
            raise TopologyError(f"device {device.hostname} has no BGP config")
        router_id = (
            device.bgp.router_id.value
            if device.bgp.router_id is not None
            else index + 1
        )
        net.add_router(
            device.hostname, device.bgp.asn, router_id=router_id, store=device.store
        )
        for address in device.interface_addresses():
            if address in owner_of:
                raise TopologyError(
                    f"address {address} assigned to both {owner_of[address]} "
                    f"and {device.hostname}"
                )
            owner_of[address] = device.hostname

    by_name = {device.hostname: device for device in devices}

    # Pair neighbors: A's neighbor address must be one of B's interfaces,
    # and vice versa, with matching remote-as declarations.
    for device in devices:
        for neighbor in device.bgp.neighbors:
            peer_name = owner_of.get(neighbor.address)
            if peer_name is None:
                raise TopologyError(
                    f"{device.hostname}: neighbor {neighbor.address} matches "
                    "no device interface"
                )
            peer = by_name[peer_name]
            if peer.bgp.asn != neighbor.remote_as:
                raise TopologyError(
                    f"{device.hostname}: neighbor {neighbor.address} declared "
                    f"remote-as {neighbor.remote_as} but {peer_name} is AS "
                    f"{peer.bgp.asn}"
                )
            if not _points_back(peer, device):
                raise TopologyError(
                    f"{peer_name} has no neighbor statement back to "
                    f"{device.hostname}"
                )
            net.connect(device.hostname, peer_name)
            net.set_import_policy(
                device.hostname, peer_name, neighbor.import_chain
            )
            net.set_export_policy(
                device.hostname, peer_name, neighbor.export_chain
            )

    # Originations, through the optional per-network route-map.
    for device in devices:
        router = net.router(device.hostname)
        for statement in device.bgp.networks:
            route = BgpRoute.build(str(statement.prefix))
            if statement.route_map is not None:
                result = eval_route_map(
                    device.store.route_map(statement.route_map),
                    device.store,
                    route,
                )
                if not result.permitted():
                    continue
                route = result.output
            router.originated.append(route)
    return net


def _points_back(peer: DeviceConfig, device: DeviceConfig) -> bool:
    ours = set(device.interface_addresses())
    return any(n.address in ours for n in peer.bgp.neighbors)


__all__ = ["TopologyError", "network_from_devices"]
