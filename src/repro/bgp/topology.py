"""Routers, sessions, and policy attachments."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.config.store import ConfigStore
from repro.route import BgpRoute


@dataclasses.dataclass
class Router:
    """One BGP speaker: its ASN, configuration store, and originations."""

    name: str
    asn: int
    router_id: int
    store: ConfigStore = dataclasses.field(default_factory=ConfigStore)
    originated: List[BgpRoute] = dataclasses.field(default_factory=list)
    #: Per-neighbor route-map chains (applied in order; all must permit).
    import_policies: Dict[str, Tuple[str, ...]] = dataclasses.field(
        default_factory=dict
    )
    export_policies: Dict[str, Tuple[str, ...]] = dataclasses.field(
        default_factory=dict
    )

    def originate(
        self,
        prefix: str,
        communities: Tuple[str, ...] = (),
        metric: int = 0,
    ) -> None:
        """Originate a prefix from this router."""
        self.originated.append(
            BgpRoute.build(prefix, communities=communities, metric=metric)
        )


class Network:
    """A topology of routers and bidirectional eBGP sessions."""

    def __init__(self) -> None:
        self.routers: Dict[str, Router] = {}
        self.sessions: Set[Tuple[str, str]] = set()

    def add_router(
        self,
        name: str,
        asn: int,
        router_id: Optional[int] = None,
        store: Optional[ConfigStore] = None,
    ) -> Router:
        if name in self.routers:
            raise ValueError(f"duplicate router {name!r}")
        router = Router(
            name=name,
            asn=asn,
            router_id=router_id if router_id is not None else len(self.routers) + 1,
            store=store if store is not None else ConfigStore(),
        )
        self.routers[name] = router
        return router

    def router(self, name: str) -> Router:
        try:
            return self.routers[name]
        except KeyError:
            raise KeyError(f"unknown router {name!r}") from None

    def connect(self, a: str, b: str) -> None:
        """Create a bidirectional BGP session between two routers."""
        if a == b:
            raise ValueError("cannot connect a router to itself")
        self.router(a)
        self.router(b)
        self.sessions.add((min(a, b), max(a, b)))

    def neighbors(self, name: str) -> List[str]:
        out = []
        for x, y in sorted(self.sessions):
            if x == name:
                out.append(y)
            elif y == name:
                out.append(x)
        return out

    def set_import_policy(
        self, router: str, neighbor: str, chain: Tuple[str, ...]
    ) -> None:
        """Attach an ordered route-map chain to routes from ``neighbor``."""
        self._check_session(router, neighbor)
        for name in chain:
            self.router(router).store.route_map(name)  # must exist
        self.router(router).import_policies[neighbor] = tuple(chain)

    def set_export_policy(
        self, router: str, neighbor: str, chain: Tuple[str, ...]
    ) -> None:
        """Attach an ordered route-map chain to routes sent to ``neighbor``."""
        self._check_session(router, neighbor)
        for name in chain:
            self.router(router).store.route_map(name)
        self.router(router).export_policies[neighbor] = tuple(chain)

    def _check_session(self, router: str, neighbor: str) -> None:
        key = (min(router, neighbor), max(router, neighbor))
        if key not in self.sessions:
            raise ValueError(f"no session between {router} and {neighbor}")


__all__ = ["Network", "Router"]
