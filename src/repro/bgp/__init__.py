"""A small BGP propagation simulator.

The paper's §5 evaluation implements five global policies on the
Figure 3 topology and checks them end-to-end.  This package provides the
substrate for that check: routers with per-neighbor import/export
route-map chains (cloud routers "use a sequence of multiple route maps",
§3.1), eBGP propagation with AS-path loop prevention, and deterministic
best-path selection.
"""

from repro.bgp.simulate import ConvergenceError, RibEntry, Ribs, simulate
from repro.bgp.topology import Network, Router

__all__ = [
    "ConvergenceError",
    "Network",
    "RibEntry",
    "Ribs",
    "Router",
    "simulate",
]
