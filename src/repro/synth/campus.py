"""The synthetic campus corpus (§3.2).

Targets, from the paper (1421 devices, 11,088 ACLs, 169 route-maps):

* 37.7% of ACLs have conflicting rule overlaps; 27% of those have more
  than 20 conflicts;
* excluding proper-subset pairs (e.g. ``permit tcp host 1.1.1.1 host
  2.2.2.2`` vs ``deny ip any any``), 18.6% have non-trivial overlaps;
  16.3% of those exceed 20;
* 2 of 169 route-maps have overlapping stanzas; one has three
  overlapping stanza pairs, of which two are conflicting.

The archetype counts are derived from the percentages and exact by
construction:

=====================  =========================================  ======
archetype              overlap signature                           share
=====================  =========================================  ======
clean                  none                                        62.3%
shadowed, light        1-20 subset conflicts (catch-all deny)      11.9%
shadowed, heavy        >20 subset conflicts                         7.2%
crossing, light        1-20 non-trivial conflicts                  15.6%
crossing, heavy        >20 non-trivial conflicts                    3.0%
=====================  =========================================  ======
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

from repro.config.acl import Acl
from repro.config.lists import (
    CommunityList,
    CommunityListEntry,
    PrefixList,
    PrefixListEntry,
)
from repro.config.matches import MatchCommunity, MatchPrefixList
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore
from repro.synth.builders import (
    PrefixPool,
    clean_acl,
    clean_route_map,
    crossing_acl,
    shadowed_acl,
)

#: The paper's §3.2 corpus shape.
TOTAL_DEVICES = 1421
TOTAL_ACLS = 11088
CONFLICT_FRACTION = 0.377
HEAVY_CONFLICT_FRACTION = 0.27  # of the conflicting ones
NONTRIVIAL_FRACTION = 0.186
HEAVY_NONTRIVIAL_FRACTION = 0.163  # of the non-trivial ones
TOTAL_ROUTE_MAPS = 169


@dataclasses.dataclass
class CampusCorpus:
    """One generated campus configuration corpus."""

    acls: List[Acl]
    route_maps: List[RouteMap]
    store: ConfigStore

    def devices(self, device_count: int = TOTAL_DEVICES):
        """Group the corpus into device configurations (§3.2's framing:
        "the campus network consisting of 1421 device configurations").

        ACLs are distributed round-robin across access devices and
        attached to per-ACL interfaces; route-maps live on the first few
        core devices.  Returns a list of
        :class:`repro.config.device.DeviceConfig`.
        """
        from repro.config.device import DeviceConfig, Interface
        from repro.config.store import ConfigStore as Store
        from repro.netaddr import Ipv4Address

        device_count = max(1, device_count)
        devices = [
            DeviceConfig(hostname=f"campus-sw-{idx:04d}", store=Store())
            for idx in range(device_count)
        ]
        for index, acl in enumerate(self.acls):
            device = devices[index % device_count]
            device.store.add_acl(acl)
            address = Ipv4Address((10 << 24) | (index & 0xFFFFFF) << 2 | 1)
            device.interfaces.append(
                Interface(
                    name=f"Vlan{100 + len(device.interfaces)}",
                    address=address,
                    prefix_length=30,
                    acl_in=acl.name,
                )
            )
        from repro.config.store import copy_route_map_closure

        core_count = max(1, device_count // 100)
        for index, rm in enumerate(self.route_maps):
            device = devices[index % core_count]
            copy_route_map_closure(self.store, device.store, rm)
        for device in devices:
            device.validate()
        return devices


@dataclasses.dataclass(frozen=True)
class ArchetypeCounts:
    """How many ACLs of each archetype a corpus of ``total`` needs."""

    clean: int
    shadowed_light: int
    shadowed_heavy: int
    crossing_light: int
    crossing_heavy: int

    @classmethod
    def for_total(cls, total: int) -> "ArchetypeCounts":
        conflicting = round(CONFLICT_FRACTION * total)
        heavy_conflicting = round(HEAVY_CONFLICT_FRACTION * conflicting)
        nontrivial = round(NONTRIVIAL_FRACTION * total)
        heavy_nontrivial = round(HEAVY_NONTRIVIAL_FRACTION * nontrivial)
        crossing_heavy = heavy_nontrivial
        crossing_light = max(0, nontrivial - heavy_nontrivial)
        shadowed_heavy = max(0, heavy_conflicting - heavy_nontrivial)
        shadowed_light = max(
            0, conflicting - nontrivial - shadowed_heavy
        )
        clean = max(
            0,
            total
            - crossing_heavy
            - crossing_light
            - shadowed_heavy
            - shadowed_light,
        )
        return cls(
            clean=clean,
            shadowed_light=shadowed_light,
            shadowed_heavy=shadowed_heavy,
            crossing_light=crossing_light,
            crossing_heavy=crossing_heavy,
        )

    @property
    def total(self) -> int:
        return (
            self.clean
            + self.shadowed_light
            + self.shadowed_heavy
            + self.crossing_light
            + self.crossing_heavy
        )


def generate_campus_corpus(
    seed: int = 1421, total_acls: int = TOTAL_ACLS, route_maps: int = TOTAL_ROUTE_MAPS
) -> CampusCorpus:
    """Generate the campus corpus (``total_acls`` scales it for tests)."""
    rng = random.Random(seed)
    pool = PrefixPool(rng)
    counts = ArchetypeCounts.for_total(total_acls)

    acls: List[Acl] = []
    for idx in range(counts.clean):
        acls.append(
            clean_acl(f"CAMPUS_CLEAN_{idx}", rng, pool, rules=rng.randint(3, 10))
        )
    for idx in range(counts.shadowed_light):
        acls.append(
            shadowed_acl(
                f"CAMPUS_SHAD_L_{idx}", rng, pool, permits=rng.randint(2, 19)
            )
        )
    for idx in range(counts.shadowed_heavy):
        acls.append(
            shadowed_acl(
                f"CAMPUS_SHAD_H_{idx}", rng, pool, permits=rng.randint(21, 35)
            )
        )
    for idx in range(counts.crossing_light):
        acls.append(
            crossing_acl(
                f"CAMPUS_CROSS_L_{idx}",
                rng,
                pool,
                permits=rng.randint(1, 4),
                denies=rng.randint(1, 4),
            )
        )
    for idx in range(counts.crossing_heavy):
        acls.append(
            crossing_acl(
                f"CAMPUS_CROSS_H_{idx}",
                rng,
                pool,
                permits=rng.randint(6, 8),
                denies=rng.randint(4, 5),
            )
        )
    rng.shuffle(acls)

    store = ConfigStore()
    maps: List[RouteMap] = []
    special = min(2, route_maps)
    for idx in range(max(0, route_maps - special)):
        maps.append(
            clean_route_map(
                f"CAMPUS_RM_{idx}", rng, pool, store, stanzas=rng.randint(2, 5)
            )
        )
    if special >= 1:
        maps.append(_single_overlap_map(store, pool))
    if special >= 2:
        maps.append(_three_pair_map(store, pool))
    rng.shuffle(maps)

    for acl in acls:
        store.add_acl(acl)
    for rm in maps:
        store.add_route_map(rm)
    return CampusCorpus(acls=acls, route_maps=maps, store=store)


def _single_overlap_map(store: ConfigStore, pool: PrefixPool) -> RouteMap:
    """One overlapping (non-conflicting) stanza pair: nested prefix lists."""
    outer = pool.block16()
    store.add_prefix_list(
        PrefixList(
            "CAMPUS_SPECIAL1_WIDE",
            (PrefixListEntry(5, "permit", outer, le=32),),
        )
    )
    store.add_prefix_list(
        PrefixList(
            "CAMPUS_SPECIAL1_NARROW",
            (PrefixListEntry(5, "permit", outer, ge=24, le=24),),
        )
    )
    return RouteMap(
        "CAMPUS_SPECIAL_SINGLE",
        (
            RouteMapStanza(
                10, "permit", (MatchPrefixList(("CAMPUS_SPECIAL1_NARROW",)),)
            ),
            RouteMapStanza(
                20, "permit", (MatchPrefixList(("CAMPUS_SPECIAL1_WIDE",)),)
            ),
        ),
    )


def _three_pair_map(store: ConfigStore, pool: PrefixPool) -> RouteMap:
    """Three overlapping stanza pairs, two of them conflicting (§3.2).

    Stanzas: A = permit prefix-list, B = deny community, C = permit
    community.  Pairs: (A,B) conflicting, (B,C) conflicting, (A,C)
    overlapping but same action.
    """
    store.add_prefix_list(
        PrefixList(
            "CAMPUS_SPECIAL2_PL",
            (PrefixListEntry(5, "permit", pool.block16(), le=24),),
        )
    )
    store.add_community_list(
        CommunityList(
            "CAMPUS_SPECIAL2_C1",
            (CommunityListEntry("permit", regex="_65100:1_"),),
        )
    )
    store.add_community_list(
        CommunityList(
            "CAMPUS_SPECIAL2_C2",
            (CommunityListEntry("permit", regex="_65100:2_"),),
        )
    )
    return RouteMap(
        "CAMPUS_SPECIAL_TRIPLE",
        (
            RouteMapStanza(
                10, "permit", (MatchPrefixList(("CAMPUS_SPECIAL2_PL",)),)
            ),
            RouteMapStanza(
                20, "deny", (MatchCommunity(("CAMPUS_SPECIAL2_C1",)),)
            ),
            RouteMapStanza(
                30, "permit", (MatchCommunity(("CAMPUS_SPECIAL2_C2",)),)
            ),
        ),
    )


__all__ = ["ArchetypeCounts", "CampusCorpus", "generate_campus_corpus"]
