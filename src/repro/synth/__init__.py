"""Seeded synthetic configuration corpora for the §3 measurement study.

The paper measured overlap frequency in a major cloud provider's WAN and
in a university campus network; those configurations are proprietary, so
this package generates corpora with the same *structure* (templated
ACLs, catch-all rules, reused prefix pools, import/export route-maps
with community/prefix/as-path logic), calibrated so the §3 statistics
land where the paper reports them.  Archetype counts are exact by
construction; a seeded RNG only controls the incidental content
(prefixes, ports, ordering), so every run reproduces the same numbers.
"""

from repro.synth.campus import CampusCorpus, generate_campus_corpus
from repro.synth.cloud import CloudCorpus, generate_cloud_corpus

__all__ = [
    "CampusCorpus",
    "CloudCorpus",
    "generate_campus_corpus",
    "generate_cloud_corpus",
]
