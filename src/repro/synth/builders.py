"""Shared archetype builders for synthetic ACLs and route-maps.

Each builder produces one policy shaped like a configuration idiom the
paper's §3 study encountered:

* **clean ACLs** — permit rules over disjoint destinations, no catch-all:
  no overlapping pairs;
* **shadowed ACLs** — specific permits followed by ``deny ip any any``:
  every (permit, catch-all) pair is a *conflicting subset* overlap, the
  "trivial" kind §3.2's refined count excludes;
* **crossing ACLs** — source-constrained permits against
  destination-constrained denies: every (permit, deny) pair is a
  *non-trivial* conflicting overlap (neither rule contains the other);
* **clean route-maps** — stanzas over disjoint prefix-lists;
* **tagged route-maps** — prefix stanzas plus community/as-path stanzas
  whose match spaces cut across them, producing stanza overlaps.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.config.acl import Acl, AclRule, PortSpec, ProtocolSpec
from repro.config.lists import (
    AsPathAccessList,
    AsPathEntry,
    CommunityList,
    CommunityListEntry,
    PrefixList,
    PrefixListEntry,
)
from repro.config.matches import MatchAsPath, MatchCommunity, MatchPrefixList
from repro.config.routemap import RouteMap, RouteMapStanza
from repro.config.store import ConfigStore
from repro.netaddr import Ipv4Address, Ipv4Prefix, Ipv4Wildcard

_COMMON_PORTS = (22, 25, 53, 80, 123, 179, 443, 8080)


class PrefixPool:
    """Disjoint /16 and /24 blocks handed out deterministically."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._next16 = 0
        self._next24 = 0

    # /16 blocks walk bases 11.0.0.0/8 .. 126.0.0.0/8 (256 blocks each);
    # the pool wraps after ~29k blocks, far beyond any single policy's
    # rule count, so blocks within one policy are always disjoint.
    _BASES16 = tuple(range(11, 127))

    def block16(self) -> Ipv4Prefix:
        index = self._next16
        self._next16 += 1
        index %= len(self._BASES16) * 256
        base = self._BASES16[index // 256]
        value = (base << 24) | ((index % 256) << 16)
        return Ipv4Prefix(Ipv4Address(value), 16)

    # /24 blocks walk 192.0.0.0/8 (65536 blocks), wrapping similarly.
    def block24(self) -> Ipv4Prefix:
        index = self._next24
        self._next24 += 1
        value = (192 << 24) | (((index >> 8) % 256) << 16) | ((index % 256) << 8)
        return Ipv4Prefix(Ipv4Address(value), 24)


def _wc(prefix: Optional[Ipv4Prefix]) -> Ipv4Wildcard:
    if prefix is None:
        return Ipv4Wildcard.any()
    return Ipv4Wildcard.from_prefix(prefix)


def _port_spec(rng: random.Random) -> PortSpec:
    if rng.random() < 0.5:
        return PortSpec()
    return PortSpec("eq", (rng.choice(_COMMON_PORTS),))


# ------------------------------------------------------------------ ACLs


def clean_acl(name: str, rng: random.Random, pool: PrefixPool, rules: int) -> Acl:
    """Permit-only rules over disjoint destinations: zero overlaps."""
    out: List[AclRule] = []
    for idx in range(rules):
        dst = pool.block24()
        out.append(
            AclRule(
                seq=10 * (idx + 1),
                action="permit",
                protocol=ProtocolSpec(rng.choice(("tcp", "udp"))),
                src=Ipv4Wildcard.any(),
                dst=_wc(dst),
                dst_ports=_port_spec(rng),
            )
        )
    return Acl(name, tuple(out))


def shadowed_acl(
    name: str, rng: random.Random, pool: PrefixPool, permits: int
) -> Acl:
    """Disjoint permits plus a catch-all deny: ``permits`` subset conflicts."""
    out: List[AclRule] = []
    for idx in range(permits):
        dst = pool.block24()
        out.append(
            AclRule(
                seq=10 * (idx + 1),
                action="permit",
                protocol=ProtocolSpec("tcp"),
                src=Ipv4Wildcard.any(),
                dst=_wc(dst),
                dst_ports=_port_spec(rng),
            )
        )
    out.append(
        AclRule(
            seq=10 * (permits + 1),
            action="deny",
            protocol=ProtocolSpec("ip"),
            src=Ipv4Wildcard.any(),
            dst=Ipv4Wildcard.any(),
        )
    )
    return Acl(name, tuple(out))


def crossing_acl(
    name: str,
    rng: random.Random,
    pool: PrefixPool,
    permits: int,
    denies: int,
) -> Acl:
    """Source-permits against destination-denies: ``permits*denies``
    non-trivial conflicting pairs (and no others)."""
    out: List[AclRule] = []
    seq = 0
    for _ in range(permits):
        seq += 10
        out.append(
            AclRule(
                seq=seq,
                action="permit",
                protocol=ProtocolSpec("tcp"),
                src=_wc(pool.block16()),
                dst=Ipv4Wildcard.any(),
            )
        )
    for _ in range(denies):
        seq += 10
        out.append(
            AclRule(
                seq=seq,
                action="deny",
                protocol=ProtocolSpec("tcp"),
                src=Ipv4Wildcard.any(),
                dst=_wc(pool.block16()),
            )
        )
    return Acl(name, tuple(out))


# ------------------------------------------------------------ route maps


def clean_route_map(
    name: str,
    rng: random.Random,
    pool: PrefixPool,
    store: ConfigStore,
    stanzas: int,
) -> RouteMap:
    """Stanzas over disjoint prefix-lists: zero stanza overlaps."""
    out: List[RouteMapStanza] = []
    for idx in range(stanzas):
        list_name = f"{name}_PL{idx}"
        store.add_prefix_list(
            PrefixList(
                list_name,
                (
                    PrefixListEntry(
                        5, "permit", pool.block16(), le=24
                    ),
                ),
            )
        )
        out.append(
            RouteMapStanza(
                seq=10 * (idx + 1),
                action=rng.choice(("permit", "deny")),
                matches=(MatchPrefixList((list_name,)),),
            )
        )
    return RouteMap(name, tuple(out))


def tagged_route_map(
    name: str,
    rng: random.Random,
    pool: PrefixPool,
    store: ConfigStore,
    prefix_stanzas: int,
    tag_stanzas: int,
    conflicting_tags: bool = True,
) -> RouteMap:
    """Prefix stanzas plus community/as-path stanzas that overlap them.

    A community (or as-path) stanza leaves the prefix dimension
    unconstrained, so it overlaps every prefix stanza and every other tag
    stanza: the overlap count is
    ``tag_stanzas * prefix_stanzas + C(tag_stanzas, 2)``.
    """
    out: List[RouteMapStanza] = []
    seq = 0
    for idx in range(prefix_stanzas):
        list_name = f"{name}_PL{idx}"
        store.add_prefix_list(
            PrefixList(
                list_name,
                (PrefixListEntry(5, "permit", pool.block16(), le=24),),
            )
        )
        seq += 10
        out.append(
            RouteMapStanza(
                seq=seq,
                action="permit",
                matches=(MatchPrefixList((list_name,)),),
            )
        )
    for idx in range(tag_stanzas):
        seq += 10
        if idx % 2 == 0:
            list_name = f"{name}_CL{idx}"
            store.add_community_list(
                CommunityList(
                    list_name,
                    (
                        CommunityListEntry(
                            "permit", regex=f"_6500{idx % 10}:{idx}_"
                        ),
                    ),
                )
            )
            matches: Tuple = (MatchCommunity((list_name,)),)
        else:
            list_name = f"{name}_AL{idx}"
            store.add_as_path_list(
                AsPathAccessList(
                    list_name,
                    (AsPathEntry("permit", f"_{64512 + idx}$"),),
                )
            )
            matches = (MatchAsPath((list_name,)),)
        action = "deny" if conflicting_tags else "permit"
        out.append(RouteMapStanza(seq=seq, action=action, matches=matches))
    return RouteMap(name, tuple(out))


__all__ = [
    "PrefixPool",
    "clean_acl",
    "clean_route_map",
    "crossing_acl",
    "shadowed_acl",
    "tagged_route_map",
]
