"""The synthetic cloud-WAN corpus (§3.1).

Targets, from the paper:

* 237 non-identical ACLs; 69 with at least one (conflicting) overlap;
  48 of those with an overlap count above 20; one border ACL — "dozens
  of rules permitting and denying combinations of source prefixes,
  destination prefixes, and protocols" — with over 100 overlapping
  pairs.
* 800 routing policies; 140 with stanza overlaps; 3 with more than 20
  overlaps each.

Archetype counts are exact by construction and survive scaling; the
seeded RNG controls only rule contents and corpus ordering.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

from repro.config.acl import Acl
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore
from repro.synth.builders import (
    PrefixPool,
    clean_acl,
    clean_route_map,
    crossing_acl,
    shadowed_acl,
    tagged_route_map,
)

#: The paper's §3.1 corpus shape.
TOTAL_ACLS = 237
OVERLAPPING_ACLS = 69
HEAVY_ACLS = 48  # of the 69, overlap count > 20
TOTAL_ROUTE_MAPS = 800
OVERLAPPING_ROUTE_MAPS = 140
HEAVY_ROUTE_MAPS = 3


@dataclasses.dataclass
class CloudCorpus:
    """One generated cloud-WAN configuration corpus."""

    acls: List[Acl]
    route_maps: List[RouteMap]
    store: ConfigStore
    #: Route-map chains applied per neighbor (§3.1: "a sequence of
    #: multiple route maps"), each a tuple of map names.
    neighbor_chains: List[tuple] = dataclasses.field(default_factory=list)

    def devices(self, device_count: int = 24):
        """Group the corpus into WAN router configurations.

        ACLs and route-maps are distributed round-robin; each device's
        ACLs are attached to interfaces, mirroring how the §3.1 study
        walked per-device configs.
        """
        from repro.config.device import DeviceConfig, Interface
        from repro.config.store import ConfigStore as Store
        from repro.config.store import copy_route_map_closure
        from repro.netaddr import Ipv4Address

        device_count = max(1, device_count)
        devices = [
            DeviceConfig(hostname=f"cloud-wan-{idx:03d}", store=Store())
            for idx in range(device_count)
        ]
        for index, acl in enumerate(self.acls):
            device = devices[index % device_count]
            device.store.add_acl(acl)
            address = Ipv4Address((100 << 24) | ((index & 0xFFFF) << 8) | 1)
            device.interfaces.append(
                Interface(
                    name=f"HundredGigE0/{len(device.interfaces)}",
                    address=address,
                    prefix_length=31,
                    acl_in=acl.name,
                )
            )
        for index, rm in enumerate(self.route_maps):
            device = devices[index % device_count]
            copy_route_map_closure(self.store, device.store, rm)
        for device in devices:
            device.validate()
        return devices


def _scaled(count: int, scale: float, minimum: int = 0) -> int:
    return max(minimum, round(count * scale))


def generate_cloud_corpus(seed: int = 2025, scale: float = 1.0) -> CloudCorpus:
    """Generate the corpus; ``scale`` shrinks it proportionally for tests."""
    rng = random.Random(seed)
    pool = PrefixPool(rng)
    store = ConfigStore()

    heavy = _scaled(HEAVY_ACLS, scale, minimum=2)
    light = _scaled(OVERLAPPING_ACLS - HEAVY_ACLS, scale, minimum=1)
    clean = _scaled(TOTAL_ACLS - OVERLAPPING_ACLS, scale, minimum=1)

    acls: List[Acl] = []
    # The border ACL with >100 overlapping pairs (12 x 9 crossing rules).
    acls.append(crossing_acl("CLOUD_BORDER_IN", rng, pool, permits=12, denies=9))
    for idx in range(heavy - 1):
        acls.append(
            shadowed_acl(
                f"CLOUD_HEAVY_{idx}", rng, pool, permits=rng.randint(21, 40)
            )
        )
    for idx in range(light):
        acls.append(
            shadowed_acl(
                f"CLOUD_LIGHT_{idx}", rng, pool, permits=rng.randint(3, 20)
            )
        )
    for idx in range(clean):
        acls.append(
            clean_acl(f"CLOUD_CLEAN_{idx}", rng, pool, rules=rng.randint(4, 12))
        )
    rng.shuffle(acls)

    heavy_rm = _scaled(HEAVY_ROUTE_MAPS, scale, minimum=1)
    light_rm = _scaled(OVERLAPPING_ROUTE_MAPS - HEAVY_ROUTE_MAPS, scale, minimum=1)
    clean_rm = _scaled(TOTAL_ROUTE_MAPS - OVERLAPPING_ROUTE_MAPS, scale, minimum=1)

    route_maps: List[RouteMap] = []
    for idx in range(heavy_rm):
        route_maps.append(
            tagged_route_map(
                f"CLOUD_RM_HEAVY_{idx}",
                rng,
                pool,
                store,
                prefix_stanzas=rng.randint(21, 24),
                tag_stanzas=1,
            )
        )
    for idx in range(light_rm):
        route_maps.append(
            tagged_route_map(
                f"CLOUD_RM_LIGHT_{idx}",
                rng,
                pool,
                store,
                prefix_stanzas=rng.randint(2, 10),
                tag_stanzas=1,
            )
        )
    for idx in range(clean_rm):
        route_maps.append(
            clean_route_map(
                f"CLOUD_RM_CLEAN_{idx}", rng, pool, store, stanzas=rng.randint(2, 6)
            )
        )
    rng.shuffle(route_maps)

    for acl in acls:
        store.add_acl(acl)
    for rm in route_maps:
        store.add_route_map(rm)

    # Cloud routers commonly apply a *sequence* of route-maps per
    # neighbor (§3.1); pair up some of the generated maps into chains.
    chain_count = max(1, len(route_maps) // 20)
    neighbor_chains = [
        (route_maps[2 * i].name, route_maps[2 * i + 1].name)
        for i in range(chain_count)
        if 2 * i + 1 < len(route_maps)
    ]
    return CloudCorpus(
        acls=acls,
        route_maps=route_maps,
        store=store,
        neighbor_chains=neighbor_chains,
    )


__all__ = ["CloudCorpus", "generate_cloud_corpus"]
