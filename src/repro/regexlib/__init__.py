"""A small regular-expression engine for Cisco-style list matching.

Cisco AS-path access-lists and expanded community-lists match routes using
POSIX-style regular expressions with one extension: ``_`` matches a
delimiter (start of string, end of string, space, comma, braces, or
parentheses).  Batfish reasons about these symbolically; this package is
our from-scratch equivalent.

The engine compiles patterns to Thompson NFAs and supports the three
operations the analysis layer needs:

* :meth:`CompiledRegex.search` — does a string contain a match?
* :meth:`CompiledRegex.example` — produce a concrete witness string.
* :func:`find_word` — joint satisfiability: find a string matched by every
  automaton in one set and by none in another (used to decide whether a
  symbolic community/AS-path constraint is realisable, and to build the
  differential examples shown to users).

Anchors are handled by rewriting: every subject string ``s`` is embedded
as ``SOS + s + EOS`` using two sentinel characters, ``^``/``$`` become
literal sentinels, and search semantics become plain substring-automaton
membership.  This keeps the automaton algebra entirely standard.
"""

from repro.regexlib.nfa import NFA, CompiledRegex, compile_regex, find_word
from repro.regexlib.parser import RegexSyntaxError, parse_regex

__all__ = [
    "NFA",
    "CompiledRegex",
    "RegexSyntaxError",
    "compile_regex",
    "find_word",
    "parse_regex",
]
