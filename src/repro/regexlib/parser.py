"""Recursive-descent parser for the supported regex subset.

Supported syntax (a practical POSIX-ERE subset plus Cisco's ``_``):

* literals, ``\\`` escapes
* ``.`` (any character except the string-boundary sentinels)
* ``[...]`` and ``[^...]`` character classes with ranges
* ``*``, ``+``, ``?`` and bounded repetition ``{m}``, ``{m,}``, ``{m,n}``
* alternation ``|`` and grouping ``(...)``
* anchors ``^`` and ``$`` (compiled to sentinel literals)
* ``_`` — Cisco delimiter: start/end of string, space, comma, braces,
  parentheses
"""

from __future__ import annotations

from typing import List

from repro.regexlib.ast import (
    EOS,
    SOS,
    Alt,
    CharClass,
    Empty,
    Lit,
    Node,
    Opt,
    Plus,
    Seq,
    Star,
)

#: Upper bound on ``{m,n}`` expansion, to keep pathological patterns from
#: exploding the automaton.
MAX_BOUNDED_REPEAT = 64


class RegexSyntaxError(ValueError):
    """Raised when a pattern cannot be parsed."""

    def __init__(self, pattern: str, position: int, message: str) -> None:
        super().__init__(f"{message} at position {position} in {pattern!r}")
        self.pattern = pattern
        self.position = position


class _Parser:
    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    # ------------------------------------------------------------ helpers

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(self.pattern, self.pos, message)

    def _peek(self) -> str:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return ""

    def _next(self) -> str:
        ch = self._peek()
        if not ch:
            raise self._error("unexpected end of pattern")
        self.pos += 1
        return ch

    # ------------------------------------------------------------ grammar

    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error(f"unexpected {self._peek()!r}")
        return node

    def _alternation(self) -> Node:
        options = [self._sequence()]
        while self._peek() == "|":
            self.pos += 1
            options.append(self._sequence())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def _sequence(self) -> Node:
        parts: List[Node] = []
        while self._peek() and self._peek() not in "|)":
            parts.append(self._repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Seq(tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                atom = Star(atom)
            elif ch == "+":
                self.pos += 1
                atom = Plus(atom)
            elif ch == "?":
                self.pos += 1
                atom = Opt(atom)
            elif ch == "{":
                atom = self._bounded(atom)
            else:
                return atom

    def _bounded(self, atom: Node) -> Node:
        # Parse {m}, {m,} or {m,n}.  A '{' not followed by a digit is a
        # literal brace in POSIX practice, but we reject it to keep the
        # grammar unambiguous; escape it instead.
        start = self.pos
        self.pos += 1  # consume '{'
        digits = self._digits()
        if digits is None:
            self.pos = start
            raise self._error("expected digits after '{' (escape literal braces)")
        low = int(digits)
        high = low
        if self._peek() == ",":
            self.pos += 1
            digits = self._digits()
            high = int(digits) if digits is not None else MAX_BOUNDED_REPEAT
        if self._next() != "}":
            raise self._error("expected '}' in bounded repeat")
        if low > high:
            raise self._error(f"bad repeat bounds {{{low},{high}}}")
        if high > MAX_BOUNDED_REPEAT:
            raise self._error(
                f"repeat bound {high} exceeds the supported maximum "
                f"{MAX_BOUNDED_REPEAT}"
            )
        parts: List[Node] = [atom] * low
        parts.extend([Opt(atom)] * (high - low))
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Seq(tuple(parts))

    def _digits(self) -> str:
        out = []
        while self._peek().isdigit():
            out.append(self._next())
        return "".join(out) if out else None

    def _atom(self) -> Node:
        ch = self._next()
        if ch == "(":
            inner = self._alternation()
            if self._next() != ")":
                raise self._error("unbalanced parenthesis")
            return inner
        if ch == "[":
            return Lit(self._char_class())
        if ch == ".":
            return Lit(CharClass.dot())
        if ch == "^":
            return Lit(CharClass.single(SOS))
        if ch == "$":
            return Lit(CharClass.single(EOS))
        if ch == "_":
            return Lit(CharClass.underscore())
        if ch == "\\":
            return Lit(CharClass.single(self._escape()))
        if ch in "*+?{":
            raise self._error(f"nothing to repeat before {ch!r}")
        return Lit(CharClass.single(ch))

    def _escape(self) -> str:
        ch = self._next()
        mapping = {"n": "\n", "t": "\t", "r": "\r"}
        return mapping.get(ch, ch)

    def _char_class(self) -> CharClass:
        negated = False
        if self._peek() == "^":
            negated = True
            self.pos += 1
        members = set()
        first = True
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated character class")
            if ch == "]" and not first:
                self.pos += 1
                break
            self.pos += 1
            if ch == "\\":
                ch = self._escape()
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and (
                self.pattern[self.pos + 1] != "]"
            ):
                self.pos += 1  # consume '-'
                hi = self._next()
                if hi == "\\":
                    hi = self._escape()
                if ord(hi) < ord(ch):
                    raise self._error(f"reversed range {ch}-{hi}")
                members.update(chr(c) for c in range(ord(ch), ord(hi) + 1))
            else:
                members.add(ch)
            first = False
        return CharClass(frozenset(members), negated=negated)


def parse_regex(pattern: str) -> Node:
    """Parse ``pattern`` into a regex AST.

    Raises :class:`RegexSyntaxError` on malformed input.
    """
    return _Parser(pattern).parse()
