"""Abstract syntax for the supported regular-expression subset."""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Tuple

#: Sentinel marking the start of a subject string.  Subject strings are
#: embedded as ``SOS + s + EOS`` before matching, which turns ``^``/``$``
#: anchors and Cisco's ``_`` delimiter into ordinary characters.
SOS = "\x02"
#: Sentinel marking the end of a subject string.
EOS = "\x03"

#: The characters Cisco's ``_`` matches besides start/end of string.
UNDERSCORE_CHARS = frozenset(" ,{}()")


@dataclasses.dataclass(frozen=True)
class CharClass:
    """A set of characters, possibly negated (relative to any alphabet).

    Negated classes and ``.`` never match the sentinels: a pattern dot
    should not be able to consume the start/end-of-string markers.
    """

    chars: FrozenSet[str]
    negated: bool = False

    def matches(self, ch: str) -> bool:
        if self.negated:
            return ch not in self.chars and ch not in (SOS, EOS)
        return ch in self.chars

    @classmethod
    def single(cls, ch: str) -> "CharClass":
        return cls(frozenset((ch,)))

    @classmethod
    def dot(cls) -> "CharClass":
        return cls(frozenset(), negated=True)

    @classmethod
    def underscore(cls) -> "CharClass":
        """Cisco ``_``: a delimiter character or a string boundary."""
        return cls(UNDERSCORE_CHARS | {SOS, EOS})


class Node:
    """Base class for regex AST nodes."""

    __slots__ = ()


@dataclasses.dataclass(frozen=True)
class Empty(Node):
    """Matches the empty string."""


@dataclasses.dataclass(frozen=True)
class Lit(Node):
    """Matches one character drawn from a class."""

    cls: CharClass


@dataclasses.dataclass(frozen=True)
class Seq(Node):
    parts: Tuple[Node, ...]


@dataclasses.dataclass(frozen=True)
class Alt(Node):
    options: Tuple[Node, ...]


@dataclasses.dataclass(frozen=True)
class Star(Node):
    inner: Node


@dataclasses.dataclass(frozen=True)
class Plus(Node):
    inner: Node


@dataclasses.dataclass(frozen=True)
class Opt(Node):
    inner: Node
