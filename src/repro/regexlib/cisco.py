"""Cisco-specific helpers on top of the generic regex engine.

AS-path access-lists match against the route's AS path rendered as a
space-separated string of ASNs ("32 174"); expanded community-lists match
against each community string ("300:3").  These helpers render routes into
subject strings, evaluate pattern matches, and turn generated witness
strings back into structured values.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.regexlib.nfa import CompiledRegex, compile_regex, find_word

_ASN_TOKEN = re.compile(r"\d+")


def render_as_path(asns: Sequence[int]) -> str:
    """Render an AS path the way Cisco regex matching sees it."""
    return " ".join(str(asn) for asn in asns)


def as_path_matches(pattern: str, asns: Sequence[int]) -> bool:
    """Does the AS path match the (Cisco-syntax) pattern?"""
    return compile_regex(pattern).search(render_as_path(asns))


def community_matches(pattern: str, community: str) -> bool:
    """Does a single community string match the pattern?"""
    return compile_regex(pattern).search(community)


def parse_as_path_witness(witness: str) -> Optional[List[int]]:
    """Interpret a generated witness string as an AS path.

    Witness strings come from automaton search and may contain filler
    characters; we keep the ASN tokens, which preserves matching for the
    digit/delimiter patterns used in practice.  Returns ``None`` if the
    string contains no ASN at all and is non-empty (i.e. cannot be read
    as a path).
    """
    witness = witness.strip()
    if not witness:
        return []
    tokens = _ASN_TOKEN.findall(witness)
    if not tokens:
        return None
    return [int(tok) for tok in tokens]


def find_as_path(
    required: Sequence[str], forbidden: Sequence[str]
) -> Optional[List[int]]:
    """Find an AS path matching all ``required`` and no ``forbidden`` patterns.

    Returns a concrete ASN list, or ``None`` if unsatisfiable.  The raw
    witness string is re-rendered and re-checked after token extraction so
    a mangled witness is never returned.
    """
    pos = [compile_regex(p) for p in required]
    neg = [compile_regex(p) for p in forbidden]
    word = find_word(pos, neg)
    if word is None:
        return None
    path = parse_as_path_witness(word)
    if path is None:
        return None
    rendered = render_as_path(path)
    if all(p.search(rendered) for p in pos) and not any(
        n.search(rendered) for n in neg
    ):
        return path
    # Token extraction changed the meaning (unusual patterns); fall back to
    # a single-community-style literal path if the raw word is digits.
    return None


def find_community(
    required: Sequence[str], forbidden: Sequence[str]
) -> Optional[str]:
    """Find a community string matching all required and no forbidden patterns."""
    pos = [compile_regex(p) for p in required]
    neg = [compile_regex(p) for p in forbidden]
    return find_word(pos, neg)


def literal_community_pattern(community: str) -> str:
    """The Cisco pattern matching exactly one community, e.g. ``_300:3_``."""
    escaped = re.sub(r"([.*+?(){}\[\]|^$\\])", r"\\\1", community)
    return f"^{escaped}$"


__all__ = [
    "as_path_matches",
    "community_matches",
    "find_as_path",
    "find_community",
    "literal_community_pattern",
    "parse_as_path_witness",
    "render_as_path",
    "CompiledRegex",
]
