"""Thompson NFA construction and automaton algebra.

The key operation is :func:`find_word`: given two sets of compiled
patterns, find a subject string matched (in Cisco search semantics) by
every "positive" pattern and by no "negative" pattern.  This single
primitive powers:

* witness/example generation for one pattern (``positives=[p]``),
* satisfiability of symbolic community and AS-path constraints
  (required-regexes vs forbidden-regexes), and
* the concrete routes shown to users as differential examples.

Subject strings are embedded as ``SOS + s + EOS`` (see
:mod:`repro.regexlib.ast`), so anchors and Cisco's ``_`` are plain
characters and "search" acceptance reduces to substring acceptance, which
we track with a per-automaton *matched* flag during joint breadth-first
exploration.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.regexlib.ast import (
    EOS,
    SOS,
    Alt,
    CharClass,
    Empty,
    Lit,
    Node,
    Opt,
    Plus,
    Seq,
    Star,
)
from repro.regexlib.parser import parse_regex

#: Characters tried first when generating witness strings, so witnesses
#: look like plausible communities/AS paths rather than arbitrary bytes.
_PREFERRED_WITNESS_CHARS = "0123456789: .-"


class NFA:
    """A Thompson NFA with a single start and a single accept state."""

    def __init__(self) -> None:
        self.char_edges: List[List[Tuple[CharClass, int]]] = []
        self.eps_edges: List[List[int]] = []
        self.start = self._new_state()
        self.accept = self._new_state()
        self._start_closure: Optional[FrozenSet[int]] = None

    def _new_state(self) -> int:
        self.char_edges.append([])
        self.eps_edges.append([])
        return len(self.char_edges) - 1

    def _add_eps(self, src: int, dst: int) -> None:
        self.eps_edges[src].append(dst)

    def _add_char(self, src: int, cls: CharClass, dst: int) -> None:
        self.char_edges[src].append((cls, dst))

    # --------------------------------------------------------------- build

    @classmethod
    def from_ast(cls, node: Node) -> "NFA":
        nfa = cls()
        nfa._build(node, nfa.start, nfa.accept)
        return nfa

    def _build(self, node: Node, entry: int, exit_: int) -> None:
        if isinstance(node, Empty):
            self._add_eps(entry, exit_)
        elif isinstance(node, Lit):
            self._add_char(entry, node.cls, exit_)
        elif isinstance(node, Seq):
            current = entry
            for part in node.parts[:-1]:
                nxt = self._new_state()
                self._build(part, current, nxt)
                current = nxt
            self._build(node.parts[-1], current, exit_)
        elif isinstance(node, Alt):
            for option in node.options:
                self._build(option, entry, exit_)
        elif isinstance(node, Star):
            hub = self._new_state()
            self._add_eps(entry, hub)
            self._add_eps(hub, exit_)
            inner_exit = self._new_state()
            self._build(node.inner, hub, inner_exit)
            self._add_eps(inner_exit, hub)
        elif isinstance(node, Plus):
            hub = self._new_state()
            self._build(node.inner, entry, hub)
            self._add_eps(hub, exit_)
            inner_exit = self._new_state()
            self._build(node.inner, hub, inner_exit)
            self._add_eps(inner_exit, hub)
        elif isinstance(node, Opt):
            self._add_eps(entry, exit_)
            self._build(node.inner, entry, exit_)
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError(f"unknown regex AST node: {node!r}")

    # ----------------------------------------------------------- simulate

    def closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """Epsilon closure of a state set."""
        seen: Set[int] = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for nxt in self.eps_edges[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def start_closure(self) -> FrozenSet[int]:
        if self._start_closure is None:
            self._start_closure = self.closure((self.start,))
        return self._start_closure

    def step(self, states: FrozenSet[int], ch: str) -> FrozenSet[int]:
        """Consume one character (no implicit restart)."""
        moved: Set[int] = set()
        for state in states:
            for cls, dst in self.char_edges[state]:
                if cls.matches(ch):
                    moved.add(dst)
        return self.closure(moved)

    def search_step(self, states: FrozenSet[int], ch: str) -> FrozenSet[int]:
        """Consume one character, allowing a fresh match to start after it."""
        return self.step(states, ch) | self.start_closure()

    def mentioned_chars(self) -> FrozenSet[str]:
        """All characters named explicitly in any transition class."""
        chars: Set[str] = set()
        for edges in self.char_edges:
            for cls, _dst in edges:
                chars.update(cls.chars)
        return frozenset(chars)


@dataclasses.dataclass(frozen=True)
class CompiledRegex:
    """A pattern compiled for Cisco search-semantics matching."""

    pattern: str
    nfa: NFA

    def search(self, subject: str) -> bool:
        """True if ``subject`` contains a match (Cisco list semantics)."""
        nfa = self.nfa
        active = nfa.start_closure()
        if nfa.accept in active:
            return True
        for ch in SOS + subject + EOS:
            active = nfa.search_step(active, ch)
            if nfa.accept in active:
                return True
        return False

    def example(self) -> Optional[str]:
        """A shortest subject string this pattern matches, or None."""
        return find_word([self], [])

    def __str__(self) -> str:
        return self.pattern


_COMPILE_CACHE: Dict[str, CompiledRegex] = {}


def compile_regex(pattern: str) -> CompiledRegex:
    """Compile (and memoise) a pattern for search-semantics matching."""
    cached = _COMPILE_CACHE.get(pattern)
    if cached is None:
        cached = CompiledRegex(pattern, NFA.from_ast(parse_regex(pattern)))
        _COMPILE_CACHE[pattern] = cached
    return _COMPILE_CACHE[pattern]


def _joint_alphabet(automata: Sequence[NFA]) -> List[str]:
    """A finite alphabet sufficient for joint-emptiness over the automata.

    Characters the patterns never mention are interchangeable, so one
    representative suffices.  Preferred witness characters are listed
    first so breadth-first search yields natural-looking strings.
    """
    mentioned: Set[str] = set()
    for nfa in automata:
        mentioned.update(nfa.mentioned_chars())
    mentioned.discard(SOS)
    mentioned.discard(EOS)
    representative = next(
        (ch for ch in "0z~!@#%&" if ch not in mentioned), None
    )
    ordered: List[str] = []
    for ch in _PREFERRED_WITNESS_CHARS:
        if ch in mentioned:
            ordered.append(ch)
    for ch in sorted(mentioned):
        if ch not in ordered:
            ordered.append(ch)
    if representative is not None:
        ordered.append(representative)
    return ordered


def find_word(
    positives: Sequence[CompiledRegex],
    negatives: Sequence[CompiledRegex],
    max_length: int = 64,
) -> Optional[str]:
    """Find a subject string matched by all positives and no negatives.

    Returns the discovered string (without sentinels), or ``None`` when the
    constraint set is unsatisfiable within ``max_length`` subject
    characters.  The search is a breadth-first product construction over
    the subset automata, tracking a sticky *matched* flag per pattern;
    a state where any negative has already matched is pruned.
    """
    automata = [r.nfa for r in positives] + [r.nfa for r in negatives]
    n_pos = len(positives)
    alphabet = _joint_alphabet(automata)

    def advance(
        config: Tuple[Tuple[FrozenSet[int], bool], ...], ch: str
    ) -> Optional[Tuple[Tuple[FrozenSet[int], bool], ...]]:
        out = []
        for idx, (states, matched) in enumerate(config):
            nfa = automata[idx]
            nxt = nfa.search_step(states, ch)
            now_matched = matched or nfa.accept in nxt
            if idx >= n_pos and now_matched:
                return None  # a forbidden pattern matched: dead branch
            out.append((nxt, now_matched))
        return tuple(out)

    def is_goal(config: Tuple[Tuple[FrozenSet[int], bool], ...]) -> bool:
        return all(matched for (_s, matched) in config[:n_pos])

    initial = []
    for idx, nfa in enumerate(automata):
        states = nfa.start_closure()
        matched = nfa.accept in states
        if idx >= n_pos and matched:
            return None  # a forbidden pattern matches everything
        initial.append((states, matched))
    start_config = advance(tuple(initial), SOS)
    if start_config is None:
        return None

    # BFS over (config) after having consumed SOS + some subject chars.
    # At every node we first try to finish with EOS.
    queue = deque([(start_config, "")])
    seen = {start_config}
    while queue:
        config, word = queue.popleft()
        final = advance(config, EOS)
        if final is not None and is_goal(final):
            return word
        if len(word) >= max_length:
            continue
        for ch in alphabet:
            nxt = advance(config, ch)
            if nxt is not None and nxt not in seen:
                seen.add(nxt)
                queue.append((nxt, word + ch))
    return None
