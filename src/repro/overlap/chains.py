"""Cross-map overlap analysis for route-map chains (§3.1).

In the cloud WAN "it was more common to use a sequence of multiple route
maps [per neighbor].  Hence, there can be overlaps not just between
different stanzas within a single route map, but also between different
route maps applied to the same neighbor."  This module measures exactly
that: for a chain of route-maps, it classifies every stanza pair drawn
from *different* maps in the chain.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.analysis.routespace import stanza_guard_space
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore


@dataclasses.dataclass(frozen=True)
class CrossMapPair:
    """One overlapping stanza pair drawn from two maps of a chain."""

    map_a: str
    seq_a: int
    map_b: str
    seq_b: int
    conflicting: bool


@dataclasses.dataclass(frozen=True)
class ChainOverlapReport:
    """Overlap classification across one neighbor's route-map chain."""

    maps: Tuple[str, ...]
    pairs: Tuple[CrossMapPair, ...]

    @property
    def overlap_count(self) -> int:
        return len(self.pairs)

    @property
    def conflict_count(self) -> int:
        return sum(1 for p in self.pairs if p.conflicting)

    def has_overlap(self) -> bool:
        return bool(self.pairs)


def chain_overlap_report(
    chain: Sequence[RouteMap], store: ConfigStore
) -> ChainOverlapReport:
    """Classify stanza pairs across the maps of one neighbor chain.

    Like the single-map §3 analysis, actions are recorded but the
    headline count ignores them (a stanza may chain onward), so the
    overlap count is an upper bound on behavioural conflicts.
    """
    guards = [
        [(stanza, stanza_guard_space(stanza, store)) for stanza in rm.stanzas]
        for rm in chain
    ]
    pairs: List[CrossMapPair] = []
    for i in range(len(chain)):
        for j in range(i + 1, len(chain)):
            for stanza_a, guard_a in guards[i]:
                for stanza_b, guard_b in guards[j]:
                    if guard_a.intersect(guard_b).is_empty():
                        continue
                    pairs.append(
                        CrossMapPair(
                            map_a=chain[i].name,
                            seq_a=stanza_a.seq,
                            map_b=chain[j].name,
                            seq_b=stanza_b.seq,
                            conflicting=stanza_a.action != stanza_b.action,
                        )
                    )
    return ChainOverlapReport(
        maps=tuple(rm.name for rm in chain), pairs=tuple(pairs)
    )


__all__ = ["ChainOverlapReport", "CrossMapPair", "chain_overlap_report"]
