"""Pairwise overlap detection for one ACL or one route-map.

This is the reproduction of the paper's "Batfish extension to analyze
the frequency and scope of overlaps" (§3).  Every pair of rules/stanzas
is classified:

* **overlapping** — some input matches both;
* **conflicting** — overlapping with different actions (the ACL metric);
* **subset** — one rule's match space is contained in the other's (the
  "trivial" pairs §3.2 excludes for its refined count, e.g.
  ``permit tcp host 1.1.1.1 host 2.2.2.2`` vs ``deny ip any any``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.analysis.headerspace import (
    PacketSpace,
    acl_guard_space,
    acl_rule_region,
    regions_disjoint_matrix,
    regions_subsume_matrix,
)
from repro.analysis.routespace import (
    RouteSpace,
    spaces_cheaply_disjoint_matrix,
    stanza_guard_space,
)
from repro.config.acl import Acl, AclRule
from repro.config.routemap import RouteMap
from repro.config.store import ConfigStore


@dataclasses.dataclass(frozen=True)
class OverlapPair:
    """One overlapping pair of rules/stanzas (by sequence number)."""

    seq_a: int
    seq_b: int
    conflicting: bool
    subset: bool
    #: A concrete input matched by both (populated on request).
    witness: object = None
    #: Direction of containment: the earlier rule's space inside the
    #: later one's (``a_in_b``, a *generalization* — e.g. a specific
    #: permit punched into a catch-all deny) or the reverse (``b_in_a``,
    #: the later rule at least partially *shadowed* by the earlier).
    a_in_b: bool = False
    b_in_a: bool = False


@dataclasses.dataclass(frozen=True)
class AclOverlapReport:
    """Overlap classification of every rule pair in one ACL."""

    name: str
    rule_count: int
    pairs: Tuple[OverlapPair, ...]

    @property
    def overlap_count(self) -> int:
        return len(self.pairs)

    @property
    def conflict_count(self) -> int:
        return sum(1 for p in self.pairs if p.conflicting)

    @property
    def nontrivial_conflict_count(self) -> int:
        return sum(1 for p in self.pairs if p.conflicting and not p.subset)

    def has_conflict(self) -> bool:
        return self.conflict_count > 0

    def has_nontrivial_conflict(self) -> bool:
        return self.nontrivial_conflict_count > 0


@dataclasses.dataclass(frozen=True)
class RouteMapOverlapReport:
    """Overlap classification of every stanza pair in one route-map."""

    name: str
    stanza_count: int
    pairs: Tuple[OverlapPair, ...]

    @property
    def overlap_count(self) -> int:
        return len(self.pairs)

    @property
    def conflict_count(self) -> int:
        return sum(1 for p in self.pairs if p.conflicting)

    def has_overlap(self) -> bool:
        return self.overlap_count > 0


def _rule_bounds(rule: AclRule) -> Tuple[int, int, int, int, int, int]:
    """Sound bounding box ``(src_lo, src_hi, dst_lo, dst_hi, pr_lo, pr_hi)``.

    Every packet the rule matches lies inside these bounds: the wildcard
    is canonical (don't-care address bits zeroed), so matched addresses
    range over ``[address, address | wildcard]``, and the protocol field
    is either one value or the full byte.  Disjoint bounds on any
    dimension prove the rules cannot overlap.
    """
    src_lo = rule.src.address.value
    dst_lo = rule.dst.address.value
    number = rule.protocol.number()
    pr_lo, pr_hi = (0, 255) if number is None else (number, number)
    return (
        src_lo,
        src_lo | rule.src.wildcard.value,
        dst_lo,
        dst_lo | rule.dst.wildcard.value,
        pr_lo,
        pr_hi,
    )


def _bounds_disjoint(
    a: Tuple[int, int, int, int, int, int],
    b: Tuple[int, int, int, int, int, int],
) -> bool:
    return (
        a[1] < b[0]
        or b[1] < a[0]
        or a[3] < b[2]
        or b[3] < a[2]
        or a[5] < b[4]
        or b[5] < a[4]
    )


def acl_overlap_report(acl: Acl, with_witnesses: bool = False) -> AclOverlapReport:
    """Classify every rule pair of ``acl``.

    With ``with_witnesses`` each overlapping pair carries a concrete
    packet matched by both rules (what an operator would want to see);
    that path walks the symbolic spaces pair by pair.  Without
    witnesses — the §3 campaign hot path — the whole all-pairs sweep
    runs on the batch interval kernels (:mod:`repro.perf.kernels`):
    every rule's region fields are flattened once and the pairwise
    disjointness/containment questions are answered as matrices, with
    results identical to the space walk (the differential tests compare
    the two paths report for report).
    """
    if not with_witnesses:
        return _acl_overlap_report_matrix(acl)
    return _acl_overlap_report_spaces(acl, with_witnesses)


def _acl_overlap_report_matrix(acl: Acl) -> AclOverlapReport:
    """The kernel-batched all-pairs sweep (no witnesses)."""
    regions = [acl_rule_region(rule) for rule in acl.rules]
    disjoint = regions_disjoint_matrix(regions, regions)
    subsumed = regions_subsume_matrix(regions, regions)
    pairs: List[OverlapPair] = []
    for i in range(len(regions)):
        disjoint_i = disjoint[i]
        for j in range(i + 1, len(regions)):
            if disjoint_i[j]:
                continue
            a_in_b = bool(subsumed[i][j])
            b_in_a = bool(subsumed[j][i])
            pairs.append(
                OverlapPair(
                    seq_a=acl.rules[i].seq,
                    seq_b=acl.rules[j].seq,
                    conflicting=acl.rules[i].action != acl.rules[j].action,
                    subset=a_in_b or b_in_a,
                    witness=None,
                    a_in_b=a_in_b,
                    b_in_a=b_in_a,
                )
            )
    return AclOverlapReport(acl.name, len(acl.rules), tuple(pairs))


def _acl_overlap_report_spaces(
    acl: Acl, with_witnesses: bool
) -> AclOverlapReport:
    """The pair-by-pair space walk (carries witnesses).

    Rule pairs whose src/dst/protocol interval bounds cannot overlap are
    skipped before any symbolic region is built; guard spaces are built
    lazily, so a rule appearing only in skipped pairs never constructs
    its region at all.
    """
    bounds = [_rule_bounds(rule) for rule in acl.rules]
    spaces: List[Optional[PacketSpace]] = [None] * len(acl.rules)

    def guard(idx: int) -> PacketSpace:
        space = spaces[idx]
        if space is None:
            space = spaces[idx] = acl_guard_space(acl.rules[idx])
        return space

    pairs: List[OverlapPair] = []
    for i in range(len(acl.rules)):
        for j in range(i + 1, len(acl.rules)):
            if _bounds_disjoint(bounds[i], bounds[j]):
                continue
            intersection = guard(i).intersect(guard(j))
            if intersection.is_empty():
                continue
            a_in_b = guard(i).is_subset_of(guard(j))
            b_in_a = guard(j).is_subset_of(guard(i))
            pairs.append(
                OverlapPair(
                    seq_a=acl.rules[i].seq,
                    seq_b=acl.rules[j].seq,
                    conflicting=acl.rules[i].action != acl.rules[j].action,
                    subset=a_in_b or b_in_a,
                    witness=intersection.witness() if with_witnesses else None,
                    a_in_b=a_in_b,
                    b_in_a=b_in_a,
                )
            )
    return AclOverlapReport(acl.name, len(acl.rules), tuple(pairs))


def route_map_overlap_report(
    route_map: RouteMap, store: ConfigStore, with_witnesses: bool = False
) -> RouteMapOverlapReport:
    """Classify every stanza pair of ``route_map``.

    Following §3, actions are still recorded (``conflicting``) but the
    headline overlap count ignores them — a stanza may chain elsewhere,
    so the count is an upper bound on behavioural conflicts.  With
    ``with_witnesses`` each pair carries a concrete route matched by
    both stanzas.
    """
    guards: List[RouteSpace] = [
        stanza_guard_space(stanza, store) for stanza in route_map.stanzas
    ]
    # Field-wise pre-check, batched: every stanza's scalar fields are
    # encoded once and swept with the batch kernels, answering "is every
    # region product provably disjoint?" for all stanza pairs up front.
    cheaply_disjoint = spaces_cheaply_disjoint_matrix(guards)
    pairs: List[OverlapPair] = []
    for i in range(len(route_map.stanzas)):
        for j in range(i + 1, len(route_map.stanzas)):
            if cheaply_disjoint[i][j]:
                continue
            intersection = guards[i].intersect(guards[j])
            if intersection.is_empty():
                continue
            a_in_b = guards[i].is_subset_of(guards[j])
            b_in_a = guards[j].is_subset_of(guards[i])
            pairs.append(
                OverlapPair(
                    seq_a=route_map.stanzas[i].seq,
                    seq_b=route_map.stanzas[j].seq,
                    conflicting=(
                        route_map.stanzas[i].action
                        != route_map.stanzas[j].action
                    ),
                    subset=a_in_b or b_in_a,
                    witness=intersection.witness() if with_witnesses else None,
                    a_in_b=a_in_b,
                    b_in_a=b_in_a,
                )
            )
    return RouteMapOverlapReport(
        route_map.name, len(route_map.stanzas), tuple(pairs)
    )


__all__ = [
    "AclOverlapReport",
    "OverlapPair",
    "RouteMapOverlapReport",
    "acl_overlap_report",
    "route_map_overlap_report",
]
