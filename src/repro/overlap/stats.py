"""Corpus-level overlap statistics in the shape §3 reports."""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.overlap.detector import AclOverlapReport, RouteMapOverlapReport

#: The paper's "more than 20" threshold for heavy-overlap policies.
HEAVY_THRESHOLD = 20


def _percent(part: int, whole: int) -> float:
    return 100.0 * part / whole if whole else 0.0


@dataclasses.dataclass(frozen=True)
class AclCorpusStats:
    """The §3 ACL statistics over one corpus."""

    total: int
    with_conflicts: int
    with_many_conflicts: int
    with_nontrivial_conflicts: int
    with_many_nontrivial_conflicts: int
    max_conflict_count: int

    @classmethod
    def collect(cls, reports: Iterable[AclOverlapReport]) -> "AclCorpusStats":
        total = 0
        with_conflicts = 0
        with_many = 0
        with_nontrivial = 0
        with_many_nontrivial = 0
        max_conflicts = 0
        for report in reports:
            total += 1
            conflicts = report.conflict_count
            nontrivial = report.nontrivial_conflict_count
            max_conflicts = max(max_conflicts, conflicts)
            if conflicts:
                with_conflicts += 1
                if conflicts > HEAVY_THRESHOLD:
                    with_many += 1
            if nontrivial:
                with_nontrivial += 1
                if nontrivial > HEAVY_THRESHOLD:
                    with_many_nontrivial += 1
        return cls(
            total=total,
            with_conflicts=with_conflicts,
            with_many_conflicts=with_many,
            with_nontrivial_conflicts=with_nontrivial,
            with_many_nontrivial_conflicts=with_many_nontrivial,
            max_conflict_count=max_conflicts,
        )

    # Percentages in the §3.2 phrasing.

    @property
    def conflict_fraction(self) -> float:
        """Percent of ACLs with conflicting rule overlaps (incl. subsets)."""
        return _percent(self.with_conflicts, self.total)

    @property
    def many_conflict_fraction(self) -> float:
        """Percent of conflicting ACLs with more than 20 conflicts."""
        return _percent(self.with_many_conflicts, self.with_conflicts)

    @property
    def nontrivial_fraction(self) -> float:
        """Percent of ACLs with non-trivial (non-subset) conflicts."""
        return _percent(self.with_nontrivial_conflicts, self.total)

    @property
    def many_nontrivial_fraction(self) -> float:
        """Percent of non-trivially-conflicting ACLs with more than 20."""
        return _percent(
            self.with_many_nontrivial_conflicts, self.with_nontrivial_conflicts
        )

    def render(self) -> str:
        return (
            f"ACLs analysed:                      {self.total}\n"
            f"  with conflicting overlaps:        {self.with_conflicts} "
            f"({self.conflict_fraction:.1f}%)\n"
            f"    of which with >20 conflicts:    {self.with_many_conflicts} "
            f"({self.many_conflict_fraction:.1f}%)\n"
            f"  with non-trivial conflicts:       {self.with_nontrivial_conflicts} "
            f"({self.nontrivial_fraction:.1f}%)\n"
            f"    of which with >20 conflicts:    {self.with_many_nontrivial_conflicts} "
            f"({self.many_nontrivial_fraction:.1f}%)\n"
            f"  max conflicts in one ACL:         {self.max_conflict_count}"
        )


@dataclasses.dataclass(frozen=True)
class RouteMapCorpusStats:
    """The §3 route-map statistics over one corpus."""

    total: int
    with_overlaps: int
    with_many_overlaps: int
    max_overlap_count: int

    @classmethod
    def collect(
        cls, reports: Iterable[RouteMapOverlapReport]
    ) -> "RouteMapCorpusStats":
        total = 0
        with_overlaps = 0
        with_many = 0
        max_overlaps = 0
        for report in reports:
            total += 1
            count = report.overlap_count
            max_overlaps = max(max_overlaps, count)
            if count:
                with_overlaps += 1
                if count > HEAVY_THRESHOLD:
                    with_many += 1
        return cls(
            total=total,
            with_overlaps=with_overlaps,
            with_many_overlaps=with_many,
            max_overlap_count=max_overlaps,
        )

    def render(self) -> str:
        return (
            f"route-maps analysed:                {self.total}\n"
            f"  with overlapping stanzas:         {self.with_overlaps}\n"
            f"  with >20 overlaps:                {self.with_many_overlaps}\n"
            f"  max overlaps in one route-map:    {self.max_overlap_count}"
        )


__all__ = ["AclCorpusStats", "HEAVY_THRESHOLD", "RouteMapCorpusStats"]
