"""The overlap measurement study (§3 of the paper).

"Two ACL rules are said to have a conflicting overlap if they perform
different actions on a packet containing a header that is successfully
matched by both.  For route-maps, we define two stanzas to have an
overlap if there is at least one route advertisement that successfully
matches both" (actions ignored, because stanzas may chain to other
route-maps).

:mod:`repro.overlap.detector` classifies every rule/stanza pair of one
policy; :mod:`repro.overlap.stats` aggregates per-corpus statistics in
the exact shape §3.1 and §3.2 report.
"""

from repro.overlap.chains import (
    ChainOverlapReport,
    CrossMapPair,
    chain_overlap_report,
)
from repro.overlap.detector import (
    AclOverlapReport,
    OverlapPair,
    RouteMapOverlapReport,
    acl_overlap_report,
    route_map_overlap_report,
)
from repro.overlap.stats import AclCorpusStats, RouteMapCorpusStats

__all__ = [
    "AclCorpusStats",
    "ChainOverlapReport",
    "CrossMapPair",
    "chain_overlap_report",
    "AclOverlapReport",
    "OverlapPair",
    "RouteMapCorpusStats",
    "RouteMapOverlapReport",
    "acl_overlap_report",
    "route_map_overlap_report",
]
