"""Closed integer intervals and canonical unions of them.

:class:`IntervalSet` is the symbolic domain for every scalar field in the
analysis engine: TCP/UDP ports, IP protocol numbers, BGP local preference,
MED, tag, weight, and (as 32-bit integers) address ranges.  It supports the
operations the route-space and header-space algebras need: intersection,
union, complement within a bounded universe, emptiness, and picking a
concrete witness value.

The representation is canonical (sorted, disjoint, non-adjacent intervals),
so structural equality coincides with set equality — a property the tests
and hypothesis properties rely on.

Interval sets are additionally **hash-consed** through the
:mod:`repro.perf.cache` layer: results of the algebra are interned so
structurally equal sets collapse to one object (equality then hits the
identity fast path), hashes are computed once per object, and the binary
operations ``intersect``/``complement`` (and ``subtract``, which is a
complement) are memoized in bounded LRU tables.  The §3 overlap study
performs hundreds of thousands of these operations over a small universe
of distinct sets, so the memo hit rate is high; see
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.perf import cache as _perf


@dataclasses.dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the integers; empty if lo > hi."""

    lo: int
    hi: int

    def is_empty(self) -> bool:
        return self.lo > self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def __str__(self) -> str:
        if self.is_empty():
            return "[]"
        if self.lo == self.hi:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"


def _normalise(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    pending = sorted(iv for iv in intervals if not iv.is_empty())
    merged: List[Interval] = []
    for iv in pending:
        if merged and iv.lo <= merged[-1].hi + 1:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return tuple(merged)


#: Hash-cons table for canonical sets and LRU memos for the binary
#: operations (see module docstring; stats surface as ``cache.*``).
_SET_INTERNER = _perf.Interner("intervals.sets")
_INTERSECT_MEMO = _perf.Memo("intervals.intersect")
_COMPLEMENT_MEMO = _perf.Memo("intervals.complement")


def _perf_intern(value: "IntervalSet") -> "IntervalSet":
    return _SET_INTERNER.intern(value)


@dataclasses.dataclass(frozen=True)
class IntervalSet:
    """A canonical, immutable union of closed integer intervals."""

    intervals: Tuple[Interval, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "intervals", _normalise(self.intervals))

    # Equality is structural with an identity fast path (interned sets
    # are shared, so ``is`` usually decides), and the hash is computed
    # once per object — these two together make memo-table keys cheap.

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is IntervalSet:
            return self.intervals == other.intervals
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(self.intervals)
            object.__setattr__(self, "_hash", value)
            return value

    @classmethod
    def _from_canonical(cls, intervals: Tuple[Interval, ...]) -> "IntervalSet":
        """Build from intervals already sorted, disjoint, non-adjacent.

        Internal constructor for the algebra below, whose outputs are
        canonical by construction — skipping ``_normalise`` avoids a
        sort per operation in the hottest loops.
        """
        out = object.__new__(cls)
        object.__setattr__(out, "intervals", intervals)
        return _perf_intern(out)

    # ---------------------------------------------------------------- build

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def single(cls, value: int) -> "IntervalSet":
        return cls((Interval(value, value),))

    @classmethod
    def closed(cls, lo: int, hi: int) -> "IntervalSet":
        return cls((Interval(lo, hi),))

    @classmethod
    def of(cls, *values: int) -> "IntervalSet":
        return cls(tuple(Interval(v, v) for v in values))

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, int]]) -> "IntervalSet":
        return cls(tuple(Interval(lo, hi) for lo, hi in pairs))

    # ---------------------------------------------------------------- query

    def is_empty(self) -> bool:
        return not self.intervals

    def contains(self, value: int) -> bool:
        # Intervals are sorted; binary search keeps large sets fast.
        lo, hi = 0, len(self.intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self.intervals[mid]
            if value < iv.lo:
                hi = mid - 1
            elif value > iv.hi:
                lo = mid + 1
            else:
                return True
        return False

    def min(self) -> int:
        if self.is_empty():
            raise ValueError("empty interval set has no minimum")
        return self.intervals[0].lo

    def max(self) -> int:
        if self.is_empty():
            raise ValueError("empty interval set has no maximum")
        return self.intervals[-1].hi

    def size(self) -> int:
        """Number of integers in the set."""
        return sum(iv.hi - iv.lo + 1 for iv in self.intervals)

    def witness(self) -> Optional[int]:
        """An arbitrary member, or None if empty."""
        if self.is_empty():
            return None
        return self.intervals[0].lo

    def __iter__(self) -> Iterator[int]:
        for iv in self.intervals:
            yield from range(iv.lo, iv.hi + 1)

    def __bool__(self) -> bool:
        return not self.is_empty()

    # ------------------------------------------------------------- algebra

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        if self is other:
            return self
        a, b = self.intervals, other.intervals
        # Disjoint bounding boxes (or an empty operand) need no work —
        # this is the "cannot overlap" pre-check the reachability and
        # overlap engines rely on to skip untouched regions.
        if not a or not b or a[-1].hi < b[0].lo or b[-1].hi < a[0].lo:
            return EMPTY_SET
        return _INTERSECT_MEMO.lookup((self, other), lambda: self._intersect(other))

    def _intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Interval] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersect(b[j])
            if not overlap.is_empty():
                result.append(overlap)
            if a[i].hi < b[j].hi:
                i += 1
            else:
                j += 1
        # Intersecting two canonical sets yields a canonical one: pieces
        # stay sorted and inherit a >=2 gap from whichever operand
        # separated them.
        return IntervalSet._from_canonical(tuple(result))

    def union(self, other: "IntervalSet") -> "IntervalSet":
        if self is other or other.is_empty():
            return self
        if self.is_empty():
            return other
        return IntervalSet(self.intervals + other.intervals)

    def complement(self, universe: "IntervalSet") -> "IntervalSet":
        """The members of ``universe`` not in this set."""
        if self.is_empty():
            return universe
        return _COMPLEMENT_MEMO.lookup(
            (self, universe), lambda: self._complement(universe)
        )

    def _complement(self, universe: "IntervalSet") -> "IntervalSet":
        gaps: List[Interval] = []
        for uiv in universe.intervals:
            cursor = uiv.lo
            for iv in self.intervals:
                if iv.hi < cursor:
                    continue
                if iv.lo > uiv.hi:
                    break
                if iv.lo > cursor:
                    gaps.append(Interval(cursor, iv.lo - 1))
                cursor = max(cursor, iv.hi + 1)
                if cursor > uiv.hi:
                    break
            if cursor <= uiv.hi:
                gaps.append(Interval(cursor, uiv.hi))
        # Gaps of a canonical set within a canonical universe are again
        # sorted, disjoint, and separated by the intervals they skirt.
        return IntervalSet._from_canonical(tuple(gaps))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        if self is other or self.is_empty():
            return EMPTY_SET
        if other.is_empty():
            return self
        return other.complement(self)

    def is_subset_of(self, other: "IntervalSet") -> bool:
        if self is other or self.is_empty():
            return True
        if other.is_empty():
            return False
        # Necessary bounding-box condition decides most negatives cheaply.
        if self.intervals[0].lo < other.intervals[0].lo:
            return False
        if self.intervals[-1].hi > other.intervals[-1].hi:
            return False
        return self.subtract(other).is_empty()

    def __str__(self) -> str:
        if self.is_empty():
            return "{}"
        return " u ".join(str(iv) for iv in self.intervals)


#: The canonical empty set, shared by every fast path above.
EMPTY_SET = IntervalSet(())
