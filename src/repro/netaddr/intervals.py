"""Closed integer intervals and canonical unions of them.

:class:`IntervalSet` is the symbolic domain for every scalar field in the
analysis engine: TCP/UDP ports, IP protocol numbers, BGP local preference,
MED, tag, weight, and (as 32-bit integers) address ranges.  It supports the
operations the route-space and header-space algebras need: intersection,
union, complement within a bounded universe, emptiness, and picking a
concrete witness value.

The representation is canonical (sorted, disjoint, non-adjacent intervals),
so structural equality coincides with set equality — a property the tests
and hypothesis properties rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the integers; empty if lo > hi."""

    lo: int
    hi: int

    def is_empty(self) -> bool:
        return self.lo > self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def __str__(self) -> str:
        if self.is_empty():
            return "[]"
        if self.lo == self.hi:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"


def _normalise(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    pending = sorted(iv for iv in intervals if not iv.is_empty())
    merged: List[Interval] = []
    for iv in pending:
        if merged and iv.lo <= merged[-1].hi + 1:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return tuple(merged)


@dataclasses.dataclass(frozen=True)
class IntervalSet:
    """A canonical, immutable union of closed integer intervals."""

    intervals: Tuple[Interval, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "intervals", _normalise(self.intervals))

    # ---------------------------------------------------------------- build

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def single(cls, value: int) -> "IntervalSet":
        return cls((Interval(value, value),))

    @classmethod
    def closed(cls, lo: int, hi: int) -> "IntervalSet":
        return cls((Interval(lo, hi),))

    @classmethod
    def of(cls, *values: int) -> "IntervalSet":
        return cls(tuple(Interval(v, v) for v in values))

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, int]]) -> "IntervalSet":
        return cls(tuple(Interval(lo, hi) for lo, hi in pairs))

    # ---------------------------------------------------------------- query

    def is_empty(self) -> bool:
        return not self.intervals

    def contains(self, value: int) -> bool:
        # Intervals are sorted; binary search keeps large sets fast.
        lo, hi = 0, len(self.intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self.intervals[mid]
            if value < iv.lo:
                hi = mid - 1
            elif value > iv.hi:
                lo = mid + 1
            else:
                return True
        return False

    def min(self) -> int:
        if self.is_empty():
            raise ValueError("empty interval set has no minimum")
        return self.intervals[0].lo

    def max(self) -> int:
        if self.is_empty():
            raise ValueError("empty interval set has no maximum")
        return self.intervals[-1].hi

    def size(self) -> int:
        """Number of integers in the set."""
        return sum(iv.hi - iv.lo + 1 for iv in self.intervals)

    def witness(self) -> Optional[int]:
        """An arbitrary member, or None if empty."""
        if self.is_empty():
            return None
        return self.intervals[0].lo

    def __iter__(self) -> Iterator[int]:
        for iv in self.intervals:
            yield from range(iv.lo, iv.hi + 1)

    def __bool__(self) -> bool:
        return not self.is_empty()

    # ------------------------------------------------------------- algebra

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: List[Interval] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            overlap = a[i].intersect(b[j])
            if not overlap.is_empty():
                result.append(overlap)
            if a[i].hi < b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(tuple(result))

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.intervals + other.intervals)

    def complement(self, universe: "IntervalSet") -> "IntervalSet":
        """The members of ``universe`` not in this set."""
        gaps: List[Interval] = []
        for uiv in universe.intervals:
            cursor = uiv.lo
            for iv in self.intervals:
                if iv.hi < cursor:
                    continue
                if iv.lo > uiv.hi:
                    break
                if iv.lo > cursor:
                    gaps.append(Interval(cursor, iv.lo - 1))
                cursor = max(cursor, iv.hi + 1)
                if cursor > uiv.hi:
                    break
            if cursor <= uiv.hi:
                gaps.append(Interval(cursor, uiv.hi))
        return IntervalSet(tuple(gaps))

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        return other.complement(self)

    def is_subset_of(self, other: "IntervalSet") -> bool:
        return self.subtract(other).is_empty()

    def __str__(self) -> str:
        if self.is_empty():
            return "{}"
        return " u ".join(str(iv) for iv in self.intervals)
