"""IPv4 addresses, prefixes, and wildcard masks.

These are deliberately small immutable value types.  The standard library's
:mod:`ipaddress` module could cover part of this, but the configuration
model needs a few operations it does not offer directly (wildcard-mask
matching, prefix truncation/extension by bit, sibling computation for
prefix-space complements), so we implement exactly what the analysis engine
needs on top of plain integers.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

_MAX_IPV4 = 0xFFFFFFFF


def _check_u32(value: int, what: str) -> None:
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"{what} out of range: {value!r}")


@dataclasses.dataclass(frozen=True, order=True)
class Ipv4Address:
    """A single IPv4 address stored as an unsigned 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        _check_u32(self.value, "IPv4 address")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        """Parse dotted-quad notation, e.g. ``"10.0.0.1"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"invalid IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"invalid IPv4 address: {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def bit(self, index: int) -> int:
        """Return bit ``index`` counted from the most significant bit (0..31)."""
        if not 0 <= index <= 31:
            raise ValueError(f"bit index out of range: {index}")
        return (self.value >> (31 - index)) & 1


@dataclasses.dataclass(frozen=True, order=True)
class Ipv4Prefix:
    """An IPv4 prefix: a network address and a prefix length.

    The network address is stored canonically (host bits zeroed); the
    constructor rejects prefixes with host bits set so that configuration
    parsing surfaces typos instead of silently truncating them.  Use
    :meth:`canonical` when truncation is intended.
    """

    network: Ipv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if self.network.value & ~self.mask_int() & _MAX_IPV4:
            raise ValueError(
                f"host bits set in prefix {self.network}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Ipv4Prefix":
        """Parse CIDR notation, e.g. ``"10.0.0.0/8"``."""
        addr_text, sep, len_text = text.strip().partition("/")
        if not sep or not len_text.isdigit():
            raise ValueError(f"invalid IPv4 prefix: {text!r}")
        return cls(Ipv4Address.parse(addr_text), int(len_text))

    @classmethod
    def canonical(cls, address: Ipv4Address, length: int) -> "Ipv4Prefix":
        """Build a prefix, zeroing any host bits in ``address``."""
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        mask = (_MAX_IPV4 << (32 - length)) & _MAX_IPV4 if length else 0
        return cls(Ipv4Address(address.value & mask), length)

    @classmethod
    def host(cls, address: Ipv4Address) -> "Ipv4Prefix":
        """The /32 prefix for a single host."""
        return cls(address, 32)

    def mask_int(self) -> int:
        """The netmask as an integer (e.g. ``/8`` -> ``0xFF000000``)."""
        if self.length == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def contains_address(self, address: Ipv4Address) -> bool:
        """True if ``address`` falls inside this prefix's address range."""
        return (address.value & self.mask_int()) == self.network.value

    def contains_prefix(self, other: "Ipv4Prefix") -> bool:
        """True if ``other`` is this prefix or a more-specific prefix of it."""
        return other.length >= self.length and self.contains_address(other.network)

    def overlaps(self, other: "Ipv4Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def first_address(self) -> Ipv4Address:
        return self.network

    def last_address(self) -> Ipv4Address:
        return Ipv4Address(self.network.value | (~self.mask_int() & _MAX_IPV4))

    def truncate(self, length: int) -> "Ipv4Prefix":
        """This prefix shortened to ``length`` bits (length <= self.length)."""
        if length > self.length:
            raise ValueError(
                f"cannot truncate /{self.length} prefix to longer /{length}"
            )
        return Ipv4Prefix.canonical(self.network, length)

    def child(self, bit: int) -> "Ipv4Prefix":
        """The length+1 prefix extending this one with ``bit`` (0 or 1)."""
        if self.length >= 32:
            raise ValueError("cannot extend a /32 prefix")
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        value = self.network.value | (bit << (31 - self.length))
        return Ipv4Prefix(Ipv4Address(value), self.length + 1)

    def sibling(self) -> "Ipv4Prefix":
        """The prefix differing from this one only in its last bit."""
        if self.length == 0:
            raise ValueError("the zero-length prefix has no sibling")
        flipped = self.network.value ^ (1 << (32 - self.length))
        return Ipv4Prefix(Ipv4Address(flipped), self.length)

    def ancestors(self) -> Iterator["Ipv4Prefix"]:
        """Yield the strict ancestors of this prefix, shortest first."""
        for length in range(self.length):
            yield self.truncate(length)


@dataclasses.dataclass(frozen=True)
class Ipv4Wildcard:
    """An address plus a Cisco wildcard mask (1-bits are "don't care").

    Extended ACLs express source/destination matches this way, e.g.
    ``10.0.0.0 0.0.255.255``.  A wildcard whose care bits are contiguous
    from the top is equivalent to a prefix; ACL analysis relies on that
    common case but this type supports arbitrary masks for completeness.
    """

    address: Ipv4Address
    wildcard: Ipv4Address

    def __post_init__(self) -> None:
        # Canonicalise: don't-care bits in the address are forced to zero so
        # equal wildcard matchers compare equal.
        care = ~self.wildcard.value & _MAX_IPV4
        canonical = self.address.value & care
        if canonical != self.address.value:
            object.__setattr__(self, "address", Ipv4Address(canonical))

    @classmethod
    def from_prefix(cls, prefix: Ipv4Prefix) -> "Ipv4Wildcard":
        inverse = ~prefix.mask_int() & _MAX_IPV4
        return cls(prefix.network, Ipv4Address(inverse))

    @classmethod
    def any(cls) -> "Ipv4Wildcard":
        return cls(Ipv4Address(0), Ipv4Address(_MAX_IPV4))

    @classmethod
    def host(cls, address: Ipv4Address) -> "Ipv4Wildcard":
        return cls(address, Ipv4Address(0))

    def matches(self, address: Ipv4Address) -> bool:
        care = ~self.wildcard.value & _MAX_IPV4
        return (address.value & care) == self.address.value

    def is_prefix_like(self) -> bool:
        """True if the wildcard is an inverted netmask (contiguous care bits)."""
        # The wildcard must be a contiguous run of ones at the bottom, i.e.
        # one less than a power of two.
        return self.wildcard.value & (self.wildcard.value + 1) == 0

    def to_prefix(self) -> Ipv4Prefix:
        """Convert to a prefix; raises if the mask is non-contiguous."""
        if not self.is_prefix_like():
            raise ValueError(f"wildcard {self} is not prefix-like")
        length = bin(~self.wildcard.value & _MAX_IPV4).count("1")
        return Ipv4Prefix.canonical(self.address, length)

    def __str__(self) -> str:
        return f"{self.address} {self.wildcard}"
