"""IPv4 addressing primitives and integer interval sets.

This package provides the lowest-level value types used throughout the
reproduction: :class:`~repro.netaddr.ip.Ipv4Address`,
:class:`~repro.netaddr.ip.Ipv4Prefix`, and
:class:`~repro.netaddr.ip.Ipv4Wildcard` for configuration matching, and
:class:`~repro.netaddr.intervals.IntervalSet` as the symbolic domain for
scalar route and packet fields (ports, protocol numbers, local preference,
metric, and so on).
"""

from repro.netaddr.intervals import Interval, IntervalSet
from repro.netaddr.ip import Ipv4Address, Ipv4Prefix, Ipv4Wildcard

__all__ = [
    "Interval",
    "IntervalSet",
    "Ipv4Address",
    "Ipv4Prefix",
    "Ipv4Wildcard",
]
