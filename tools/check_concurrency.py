#!/usr/bin/env python3
"""A concurrency lint for the serving and LLM layers.

The serving layer's throughput rests on two invariants that ordinary
tests rarely catch regressing:

``CC001``
    No blocking call (LLM completion, sleep, socket/HTTP I/O) may run
    *lexically inside* a ``with <lock>`` block.  A blocked holder stalls
    every other thread contending for that lock — the exact serial
    collapse the dedup/batching layers exist to avoid.  ``Condition``
    methods (``wait``/``wait_for``/``notify``...) are exempt: waiting
    releases the lock by design.

``CC002``
    Code under the scanned targets must not call the process-global
    ``install_journal``/``uninstall_journal``.
    Concurrent sessions each own a journal; the scoped, thread-local
    ``obs.journaling(...)`` context is the supported route — a global
    journal interleaves events across sessions and breaks replay.

``CC003``
    Campaign pool-worker code (``src/repro/perf``) must never touch the
    global telemetry hub or journal directly (``install_hub``,
    ``get_hub``, ``begin_request``, ``journaling``...).  Pool workers
    run in forked children whose counters flow through a private
    per-chunk :class:`repro.obs.Recorder` and are re-published by the
    parent; a worker reaching for the hub would double-count or write
    to a hub the parent never reads.  The contextvar-scoped
    ``telemetry.tracing``/``telemetry.current_trace`` are exempt —
    propagating the originating trace is the supported route.

The scan is lexical (AST-based, no control-flow analysis), which keeps
it fast and deterministic; the rare intentional exception can carry a
``# cc: allow`` comment on the offending line.

Usage::

    python tools/check_concurrency.py [paths...]

With no arguments it scans the default targets.  Exit status 0 when
clean, 1 when any finding survives.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import sys
from typing import Iterable, List, Sequence, Tuple

#: Directories scanned when no paths are given (repo-root relative).
#: ``src/repro/obs`` is included for the telemetry hub and metrics
#: endpoint, which sit on the serving hot path; ``src/repro/perf`` for
#: the campaign pool workers (CC003).
DEFAULT_TARGETS = (
    "src/repro/serve",
    "src/repro/llm",
    "src/repro/obs",
    "src/repro/perf",
)

#: Path fragments that mark a module as campaign pool-worker code; the
#: CC003 rule applies only to these.
POOL_WORKER_FRAGMENTS = ("repro/perf",)

#: Callable names considered blocking when invoked under a lock.  The
#: list is deliberately short and high-signal: LLM completions, sleeps,
#: and the socket/HTTP primitives the remote backend uses.
BLOCKING_NAMES = frozenset(
    {
        "complete",
        "sleep",
        "urlopen",
        "getresponse",
        "recv",
        "sendall",
        "create_connection",
    }
)

#: ``Condition`` methods that legitimately run while holding the lock.
CONDITION_METHODS = frozenset(
    {"wait", "wait_for", "notify", "notify_all"}
)

#: Substrings that mark a ``with`` context expression as a lock.
LOCKISH = ("lock", "cond", "mutex", "sem")

#: Process-global journal installers (CC002).
GLOBAL_JOURNAL_NAMES = frozenset({"install_journal", "uninstall_journal"})

#: Global telemetry-hub / journal touchpoints forbidden to pool-worker
#: code (CC003).  ``tracing``/``current_trace`` are deliberately absent:
#: they are contextvar-scoped and safe in workers.
GLOBAL_TELEMETRY_NAMES = frozenset(
    {
        "install_hub",
        "uninstall_hub",
        "get_hub",
        "hub_active",
        "begin_request",
        "finish_request",
        "journaling",
        "install_journal",
        "uninstall_journal",
    }
)

ALLOW_MARKER = "# cc: allow"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One concurrency-lint finding."""

    label: str
    lineno: int
    code: str
    message: str

    def render(self) -> str:
        """One-line ``path:line: CODE message`` form."""
        return f"{self.label}:{self.lineno}: {self.code} {self.message}"


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_lockish(expr: ast.expr) -> bool:
    try:
        text = ast.unparse(expr).lower()
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return False
    return any(marker in text for marker in LOCKISH)


class _Scanner(ast.NodeVisitor):
    """Collects findings; tracks lexical ``with <lock>`` nesting."""

    def __init__(
        self,
        label: str,
        source_lines: Sequence[str],
        pool_worker: bool = False,
    ) -> None:
        self.label = label
        self.lines = source_lines
        self.pool_worker = pool_worker
        self.findings: List[Finding] = []
        self._lock_depth = 0

    def _allowed(self, lineno: int) -> bool:
        if 1 <= lineno <= len(self.lines):
            return ALLOW_MARKER in self.lines[lineno - 1]
        return False

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if not self._allowed(lineno):
            self.findings.append(Finding(self.label, lineno, code, message))

    def _visit_with(self, node: ast.AST, items: Sequence[ast.withitem]) -> None:
        locked = any(_is_lockish(item.context_expr) for item in items)
        if locked:
            self._lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._lock_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        """Track lock nesting through ``with`` blocks."""
        self._visit_with(node, node.items)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        """Track lock nesting through ``async with`` blocks."""
        self._visit_with(node, node.items)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag global-journal installs and blocking calls under locks."""
        name = _call_name(node)
        if name in GLOBAL_JOURNAL_NAMES:
            self._add(
                node,
                "CC002",
                f"{name}() installs a process-global journal; use the "
                f"scoped obs.journaling(...) context instead",
            )
        if (
            self._lock_depth > 0
            and name in BLOCKING_NAMES
            and name not in CONDITION_METHODS
        ):
            self._add(
                node,
                "CC001",
                f"blocking call {name}() lexically inside a 'with <lock>' "
                f"block; move the call outside the critical section",
            )
        if self.pool_worker and name in GLOBAL_TELEMETRY_NAMES:
            self._add(
                node,
                "CC003",
                f"pool-worker code calls {name}(); campaign workers must "
                f"not touch the global telemetry hub or journal — record "
                f"into the private chunk recorder and let the parent "
                f"re-publish",
            )
        self.generic_visit(node)


def scan_source(
    label: str, text: str, pool_worker: bool = False
) -> List[Finding]:
    """Scan one module's source; returns findings sorted by line."""
    tree = ast.parse(text, filename=label)
    scanner = _Scanner(label, text.splitlines(), pool_worker=pool_worker)
    scanner.visit(tree)
    return sorted(scanner.findings, key=lambda f: (f.lineno, f.code))


def _is_pool_worker_path(path: str) -> bool:
    normalised = os.path.abspath(path).replace(os.sep, "/")
    return any(fragment in normalised for fragment in POOL_WORKER_FRAGMENTS)


def _python_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, _dirs, names in os.walk(path):
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return sorted(files)


def scan_paths(paths: Sequence[str]) -> Tuple[List[Finding], int]:
    """Scan files/directories; returns (findings, files scanned)."""
    findings: List[Finding] = []
    files = _python_files(paths)
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            findings.extend(
                scan_source(
                    path,
                    handle.read(),
                    pool_worker=_is_pool_worker_path(path),
                )
            )
    return findings, len(files)


def main(argv: Sequence[str]) -> int:
    """CLI entry point; see the module docstring for usage."""
    targets = list(argv) or [
        os.path.join(_repo_root(), target) for target in DEFAULT_TARGETS
    ]
    missing = [t for t in targets if not os.path.exists(t)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings, scanned = scan_paths(targets)
    for finding in findings:
        print(finding.render())
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"check_concurrency: {scanned} file(s) scanned, {status}")
    return 1 if findings else 0


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
