#!/usr/bin/env python3
"""Microbenchmark the batch interval kernels against per-pair baselines.

Times the :mod:`repro.perf.kernels` matrix and element-wise kernels
over a seeded random interval-set population, against the equivalent
per-pair ``IntervalSet`` loops run under ``perf.disabled()`` (so the
baseline pays the real per-call algebra, not a memo lookup).  Every
backend the process can run is measured (``py`` always, ``numpy`` when
importable), and the equivalence of outputs is asserted as the
benchmark runs — a kernel that drifted from the algebra fails here
before it misleads anyone with a fast wrong answer.

The resulting ``kernels`` block is merged into
``benchmarks/BENCH_perf.json`` (atomic replace, other keys preserved).

Usage::

    PYTHONPATH=src python tools/profile_regions.py [--sets N]
        [--repeat R] [--seed S] [--output PATH] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Sequence

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro import perf  # noqa: E402
from repro.netaddr.intervals import IntervalSet  # noqa: E402
from repro.perf import kernels  # noqa: E402

#: The population mimics the practical field universes: 32-bit address
#: ranges with a handful of intervals per set.
ADDRESS_HI = 0xFFFFFFFF

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "BENCH_perf.json",
)


def build_population(seed: int, count: int) -> List[IntervalSet]:
    """Seeded random interval sets shaped like ACL address fields."""
    rng = random.Random(seed)
    sets: List[IntervalSet] = [IntervalSet.empty()]
    while len(sets) < count:
        pairs = []
        for _ in range(rng.randint(1, 4)):
            lo = rng.randint(0, ADDRESS_HI)
            hi = min(ADDRESS_HI, lo + rng.randint(0, ADDRESS_HI // 8))
            pairs.append((lo, hi))
        sets.append(IntervalSet.from_pairs(pairs))
    return sets


def best_of(repeat: int, fn: Callable[[], Any]) -> float:
    """The fastest of ``repeat`` timed calls (seconds)."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def baseline_results(sets: Sequence[IntervalSet]) -> Dict[str, Any]:
    """The per-pair loop answers, for equivalence checks."""
    n = len(sets)
    half = n // 2
    return {
        "disjoint": [
            [sets[i].intersect(sets[j]).is_empty() for j in range(n)]
            for i in range(n)
        ],
        "subset": [
            [sets[i].is_subset_of(sets[j]) for j in range(n)]
            for i in range(n)
        ],
        "intersect": [
            sets[i].intersect(sets[i + half]) for i in range(half)
        ],
        "subtract": [
            sets[i].subtract(sets[i + half]) for i in range(half)
        ],
    }


def time_baselines(sets: Sequence[IntervalSet], repeat: int) -> Dict[str, float]:
    """Per-pair ``IntervalSet`` loop timings with the cache layer off."""
    n = len(sets)
    half = n // 2
    with perf.disabled():
        return {
            "disjoint_matrix_s": best_of(
                repeat,
                lambda: [
                    sets[i].intersect(sets[j]).is_empty()
                    for i in range(n)
                    for j in range(n)
                ],
            ),
            "subset_matrix_s": best_of(
                repeat,
                lambda: [
                    sets[i].is_subset_of(sets[j])
                    for i in range(n)
                    for j in range(n)
                ],
            ),
            "intersect_many_s": best_of(
                repeat,
                lambda: [
                    sets[i].intersect(sets[i + half]) for i in range(half)
                ],
            ),
            "subtract_many_s": best_of(
                repeat,
                lambda: [
                    sets[i].subtract(sets[i + half]) for i in range(half)
                ],
            ),
        }


def time_backend(
    sets: Sequence[IntervalSet],
    repeat: int,
    expected: Dict[str, Any],
) -> Dict[str, float]:
    """Kernel timings on the active backend; asserts exact equivalence."""
    half = len(sets) // 2
    flat = kernels.encode(sets)
    front = kernels.encode(sets[:half])
    back = kernels.encode(sets[half : half * 2])

    disjoint = kernels.disjoint_matrix(flat, flat)
    subset = kernels.subset_matrix(flat, flat)
    intersected = kernels.intersect_many(front, back)
    subtracted = kernels.subtract_many(front, back)
    for i, row in enumerate(expected["disjoint"]):
        for j, value in enumerate(row):
            assert bool(disjoint[i][j]) == value, ("disjoint", i, j)
    for i, row in enumerate(expected["subset"]):
        for j, value in enumerate(row):
            assert bool(subset[i][j]) == value, ("subset", i, j)
    assert intersected == expected["intersect"], "intersect_many diverged"
    assert subtracted == expected["subtract"], "subtract_many diverged"

    return {
        "encode_s": best_of(repeat, lambda: kernels.encode(sets)),
        "disjoint_matrix_s": best_of(
            repeat, lambda: kernels.disjoint_matrix(flat, flat)
        ),
        "subset_matrix_s": best_of(
            repeat, lambda: kernels.subset_matrix(flat, flat)
        ),
        "intersect_many_s": best_of(
            repeat, lambda: kernels.intersect_many(front, back)
        ),
        "subtract_many_s": best_of(
            repeat, lambda: kernels.subtract_many(front, back)
        ),
    }


def profile(seed: int, count: int, repeat: int) -> Dict[str, Any]:
    """The full ``kernels`` block: population, baselines, per-backend."""
    sets = build_population(seed, count)
    with perf.disabled():
        expected = baseline_results(sets)
    baselines = time_baselines(sets, repeat)
    backends: Dict[str, Any] = {}
    for name in kernels.available_backends():
        with kernels.use_backend(name):
            timings = time_backend(sets, repeat, expected)
        # The matrix question the hot paths actually ask, including the
        # one-off encode, against the same question asked per pair.
        batched = timings["encode_s"] + timings["disjoint_matrix_s"]
        timings["disjoint_speedup"] = round(
            baselines["disjoint_matrix_s"] / max(batched, 1e-9), 2
        )
        backends[name] = timings
    return {
        "population": {"seed": seed, "sets": count, "repeat": repeat},
        "baseline": baselines,
        "backends": backends,
    }


def merge_into_snapshot(path: str, block: Dict[str, Any]) -> None:
    """Write ``block`` under the ``kernels`` key of ``path`` atomically."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        snapshot = {}
    snapshot["kernels"] = block
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        os.unlink(tmp_path)
        raise


def main(argv: Sequence[str]) -> int:
    """CLI entry point; see the module docstring for usage."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sets", type=int, default=96, help="population size (default: 96)"
    )
    parser.add_argument(
        "--repeat", type=int, default=5, help="best-of repetitions (default: 5)"
    )
    parser.add_argument(
        "--seed", type=int, default=1421, help="population seed (default: 1421)"
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="snapshot to merge the kernels block into (default: %(default)s)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the block without touching the snapshot",
    )
    args = parser.parse_args(argv)
    if args.sets < 4 or args.sets % 2:
        print("error: --sets must be an even number >= 4", file=sys.stderr)
        return 2
    block = profile(args.seed, args.sets, args.repeat)
    print(json.dumps(block, indent=2))
    if not args.dry_run:
        merge_into_snapshot(args.output, block)
        print(f"merged kernels block into {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
