#!/usr/bin/env python3
"""A hermetic end-to-end smoke test for the serving telemetry tier.

Spawns ``clarify serve --metrics-port 0`` on the simulated backend,
drives a handful of requests through its JSONL stdin/stdout protocol,
scrapes the live ``/metrics`` endpoint over loopback, and asserts:

* ``/healthz`` answers ``ok``;
* the exposition parses as Prometheus text format (every non-comment
  line is ``name{labels} value`` with a float-parseable value, every
  metric name matches the exposition grammar);
* ``clarify_serve_requests`` is present and positive — the requests we
  sent actually landed in the scraped registry;
* the wide-event log holds exactly one event per request, each carrying
  a trace id that matches the ``trace_id`` the serve protocol returned.

Everything runs on 127.0.0.1 against the simulated LLM; no step opens
an external network connection.  Exit status 0 on success, 1 on any
assertion failure.

Usage::

    python tools/telemetry_smoke.py [--requests N]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.request

#: Prometheus metric-name grammar (exposition format).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: One exposition sample line: name, optional {labels}, value.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$"
)

INTENT = (
    "Write a route-map stanza that permits routes with community "
    "100:200 and sets local-preference 250"
)


def _fail(message: str) -> "NoReturn":  # type: ignore[name-defined]  # noqa: F821
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text exposition into ``{name: [value, ...]}``.

    Raises via :func:`_fail` on any line that violates the grammar.
    """
    samples: dict = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if match is None:
            _fail(f"unparseable exposition line: {line!r}")
        name = match.group("name")
        if not METRIC_NAME_RE.match(name):
            _fail(f"invalid metric name: {name!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            _fail(f"non-numeric sample value in line: {line!r}")
        samples.setdefault(name, []).append(value)
    return samples


def run_smoke(requests: int) -> int:
    """Drive the serve subprocess and verify the telemetry surface."""
    with tempfile.TemporaryDirectory(prefix="clarify-smoke-") as tmp:
        event_log = os.path.join(tmp, "events.jsonl")
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--backend",
                "simulated",
                "--workers",
                "2",
                "--metrics-port",
                "0",
                "--event-log",
                event_log,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            assert proc.stdin is not None
            assert proc.stdout is not None
            assert proc.stderr is not None

            # The port announcement is the first stderr line.
            announce = proc.stderr.readline()
            match = re.search(r"127\.0\.0\.1:(\d+)", announce)
            if match is None:
                _fail(f"no metrics-port announcement on stderr: {announce!r}")
            port = int(match.group(1))

            def call(payload: dict) -> dict:
                proc.stdin.write(json.dumps(payload) + "\n")
                proc.stdin.flush()
                line = proc.stdout.readline()
                if not line:
                    _fail(f"serve closed stdout answering {payload!r}")
                return json.loads(line)

            opened = call({"op": "open", "session": "smoke", "config": ""})
            if not opened.get("ok"):
                _fail(f"open failed: {opened}")

            trace_ids = []
            for index in range(requests):
                reply = call(
                    {
                        "op": "request",
                        "session": "smoke",
                        "target": "ISP_OUT",
                        "intent": INTENT,
                        "request_id": f"smoke-{index}",
                    }
                )
                if not reply.get("ok"):
                    _fail(f"request {index} failed: {reply}")
                if reply.get("request_id") != f"smoke-{index}":
                    _fail(f"request_id not echoed: {reply}")
                if not reply.get("trace_id"):
                    _fail(f"no trace_id on response: {reply}")
                trace_ids.append(reply["trace_id"])

            def scrape(path: str) -> str:
                url = f"http://127.0.0.1:{port}{path}"
                with urllib.request.urlopen(url, timeout=10) as reply:
                    return reply.read().decode("utf-8")

            if scrape("/healthz").strip() != "ok":
                _fail("/healthz did not answer ok")
            exposition = scrape("/metrics")
            samples = parse_exposition(exposition)
            served = sum(samples.get("clarify_serve_requests", []))
            if served < requests:
                _fail(
                    f"clarify_serve_requests is {served}, expected at "
                    f"least {requests}"
                )

            call({"op": "quit"})
            proc.stdin.close()
            proc.wait(timeout=30)

            with open(event_log, "r", encoding="utf-8") as handle:
                events = [json.loads(line) for line in handle if line.strip()]
            if len(events) != requests:
                _fail(
                    f"wide-event log has {len(events)} event(s), "
                    f"expected {requests}"
                )
            logged = {event.get("trace_id") for event in events}
            if logged != set(trace_ids):
                _fail(
                    "wide-event trace ids do not match the serve "
                    f"responses: {sorted(logged)} vs {sorted(trace_ids)}"
                )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    print(
        f"telemetry smoke: {requests} request(s) served, "
        f"{len(samples)} metric name(s) scraped, exposition valid, "
        "wide-event log consistent"
    )
    return 0


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=3,
        help="requests to drive through the serve loop (default: 3)",
    )
    args = parser.parse_args(argv)
    return run_smoke(args.requests)


if __name__ == "__main__":
    raise SystemExit(main())
