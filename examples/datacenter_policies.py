#!/usr/bin/env python3
"""The Section 5 evaluation: incremental synthesis of the Figure 3 WAN.

Builds the route-maps of M, R1, and R2 incrementally with Clarify
(decomposing the five global policies into local per-router policies,
Lightyear-style), simulates BGP propagation over the topology, checks
every global policy, and prints the Figure 4 table.

Run:  python examples/datacenter_policies.py
"""

from repro.bgp.checks import visible_prefixes
from repro.config import render_config
from repro.evalcase import build_figure3, figure4_rows


def main() -> None:
    print("Synthesising the Figure 3 routers incrementally with Clarify...")
    result = build_figure3()

    print("\nFigure 4: statistics for generating and disambiguating the "
          "route-maps")
    print(f"{'Router':<8}{'#Route-maps':<14}{'#LLM calls':<12}{'#Disambiguation'}")
    for name, maps, calls, interactions in figure4_rows(result.stats):
        print(f"{name:<8}{maps:<14}{calls:<12}{interactions}")

    print("\nGlobal policies (checked on the simulated BGP fixpoint):")
    for policy, holds in result.policy_results.items():
        print(f"  [{'PASS' if holds else 'FAIL'}] {policy}")

    print("\nWhat each vantage point sees:")
    for router in ("M", "DC", "MGMT", "ISP1", "ISP2"):
        print(f"  {router:<5} -> {', '.join(visible_prefixes(result.ribs, router))}")

    print("\nM's synthesised configuration:")
    print(render_config(result.network.router("M").store))

    print("\nR1's synthesised configuration:")
    print(render_config(result.network.router("R1").store))


if __name__ == "__main__":
    main()
