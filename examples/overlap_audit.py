#!/usr/bin/env python3
"""Auditing a configuration corpus for overlaps (the Section 3 study).

Generates scaled-down synthetic cloud-WAN and campus corpora and runs
the overlap analyzer over them, printing the same statistics the paper
reports.  Use ``--full`` to run at the paper's corpus sizes (takes about
a minute for the campus corpus).

Run:  python examples/overlap_audit.py [--full]
"""

import argparse

from repro.overlap import (
    AclCorpusStats,
    RouteMapCorpusStats,
    acl_overlap_report,
    route_map_overlap_report,
)
from repro.synth import generate_campus_corpus, generate_cloud_corpus
from repro.synth.campus import TOTAL_ACLS, TOTAL_ROUTE_MAPS


def audit(label, acls, route_maps, store) -> None:
    print(f"\n=== {label} ===")
    acl_stats = AclCorpusStats.collect(acl_overlap_report(a) for a in acls)
    print(acl_stats.render())
    print()
    rm_stats = RouteMapCorpusStats.collect(
        route_map_overlap_report(rm, store) for rm in route_maps
    )
    print(rm_stats.render())


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at the paper's corpus sizes (slower)",
    )
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.05

    cloud = generate_cloud_corpus(scale=scale)
    audit(
        f"cloud WAN corpus (scale {scale})",
        cloud.acls,
        cloud.route_maps,
        cloud.store,
    )

    campus = generate_campus_corpus(
        total_acls=max(1, round(TOTAL_ACLS * scale)),
        route_maps=TOTAL_ROUTE_MAPS if args.full else max(5, round(TOTAL_ROUTE_MAPS * scale)),
    )
    audit(
        f"campus corpus (scale {scale})",
        campus.acls,
        campus.route_maps,
        campus.store,
    )

    print(
        "\nPaper reference (§3): cloud: 69/237 ACLs overlapping, 48 with "
        ">20; 140/800 route-maps overlapping, 3 with >20.\n"
        "Campus: 37.7% conflicting (27% of those >20); 18.6% non-trivial "
        "(16.3% of those >20); 2/169 route-maps overlapping."
    )


if __name__ == "__main__":
    main()
