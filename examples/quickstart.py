#!/usr/bin/env python3
"""Quickstart: the paper's Section 2 walkthrough, end to end.

We start from the ISP_OUT routing policy of §2.1, submit the paper's
English intent, and watch every stage of the Clarify pipeline: query
classification, stanza synthesis, JSON spec extraction, verification,
and the disambiguation question with its differential example.

Run:  python examples/quickstart.py
"""

from repro.analysis import compare_route_policies
from repro.config import parse_config, render_config
from repro.config.names import rename_snippet_lists
from repro.core import (
    CountingOracle,
    DisambiguationMode,
    ScriptedOracle,
    disambiguate_stanza,
)
from repro.core.synthesis import SynthesisPipeline
from repro.core.insertion import insert_stanza_into_store
from repro.llm import SimulatedLLM, TranscribingClient

ISP_OUT = """\
ip as-path access-list D0 permit _32$

ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24

route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("The existing routing policy (Section 2.1)")
    print(ISP_OUT)

    banner("The user's intent")
    print(INTENT)

    llm = TranscribingClient(SimulatedLLM())
    pipeline = SynthesisPipeline(llm)

    banner("Step 1: classify the query")
    kind = pipeline.classify(INTENT)
    print(f"classifier says: {kind}")

    banner("Step 3a: LLM-extracted JSON specification")
    spec = pipeline.extract_spec(INTENT, kind)
    print(llm.records[-1].response)

    banner("Step 3b: LLM-synthesised snippet (verified against the spec)")
    result = pipeline.synthesize(INTENT)
    print(render_config(result.snippet))
    print(f"\nverified in {result.attempts} attempt(s); "
          f"{llm.call_count()} LLM calls so far")

    store = parse_config(ISP_OUT)
    snippet = rename_snippet_lists(result.snippet, store)
    print("\nancillary lists renamed for the target config: "
          + ", ".join(sorted(snippet.list_names())))

    banner("Step 6: the disambiguator's differential example (Section 2.2)")
    top_store, top_map = insert_stanza_into_store(store, "ISP_OUT", snippet, 0)
    bottom_store, bottom_map = insert_stanza_into_store(store, "ISP_OUT", snippet, 3)
    differences = compare_route_policies(
        top_map, bottom_map, top_store, bottom_store, max_differences=1
    )
    print(differences[0].render())

    banner("The user chooses OPTION 1 -> Figure 2(a)")
    oracle = CountingOracle(ScriptedOracle([1]))
    outcome = disambiguate_stanza(
        store, "ISP_OUT", snippet, oracle, DisambiguationMode.TOP_BOTTOM
    )
    print(f"questions asked: {outcome.question_count}")
    print(f"inserted at stanza position {outcome.position}\n")
    print(render_config(outcome.store))


if __name__ == "__main__":
    main()
