#!/usr/bin/env python3
"""The paper's §7 extension: disambiguated insertion into ancillary lists.

Prefix-lists, community-lists, and AS-path lists are themselves
first-match policies, so inserting a new entry has the same ambiguity
problem as inserting a stanza.  This example adds a permit exception to
a prefix-list that denies a covering range — the exception only works if
it lands *above* the deny, and the disambiguator asks exactly one
question to find that out.

Run:  python examples/list_insertion.py
"""

from repro.config import parse_config, render_config
from repro.config.lists import PrefixListEntry
from repro.core import CountingOracle, IntentOracle
from repro.core.listinsert import disambiguate_prefix_list_entry
from repro.netaddr import Ipv4Prefix

EXISTING = """\
ip prefix-list EDGE seq 10 deny 10.1.0.0/16 le 32
ip prefix-list EDGE seq 20 permit 10.0.0.0/8 le 24
"""

NEW_ENTRY = PrefixListEntry(
    seq=0, action="permit", prefix=Ipv4Prefix.parse("10.1.2.0/24"), le=32
)


def operator_intent(network: Ipv4Prefix) -> tuple:
    """Ground truth: 10.1.2.0/24 is an exception to the 10.1/16 deny."""
    if Ipv4Prefix.parse("10.1.2.0/24").contains_prefix(network):
        return ("permit",)
    if Ipv4Prefix.parse("10.1.0.0/16").contains_prefix(network):
        return ("deny",)
    if (
        Ipv4Prefix.parse("10.0.0.0/8").contains_prefix(network)
        and network.length <= 24
    ):
        return ("permit",)
    return ("deny",)


def main() -> None:
    store = parse_config(EXISTING)
    print("Existing prefix-list:\n")
    print(EXISTING)
    print(f"New entry: permit {NEW_ENTRY.prefix} le {NEW_ENTRY.le}\n")

    oracle = CountingOracle(IntentOracle(operator_intent))
    result = disambiguate_prefix_list_entry(store, "EDGE", NEW_ENTRY, oracle)

    print(f"overlapping entries (indices): {list(result.overlaps)}")
    print(f"questions asked: {result.question_count}")
    for question in result.questions:
        print("\nThe disambiguator asked:\n")
        print(question.render())
    print(f"\nentry inserted at position {result.position}\n")
    print(render_config(result.store))

    updated = result.store.prefix_list("EDGE")
    print("\nBehaviour checks:")
    for text in ["10.1.2.0/25", "10.1.3.0/24", "10.5.0.0/24"]:
        network = Ipv4Prefix.parse(text)
        print(f"  {text:<14} -> {'permit' if updated.permits(network) else 'deny'}")


if __name__ == "__main__":
    main()
