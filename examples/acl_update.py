#!/usr/bin/env python3
"""Incremental ACL updates with disambiguation.

An edge ACL permits datacenter traffic and ends with a catch-all deny.
The operator wants to block SSH from one subnet — an update whose
correct position is ambiguous: above the broad permit (blocking SSH) or
below it (doing nothing).  Clarify synthesises the rule, finds the
overlapping rules, and asks one differential question to place it.

Run:  python examples/acl_update.py
"""

from repro.analysis import eval_acl
from repro.config import parse_config, render_config
from repro.core import ClarifySession, IntentOracle
from repro.route import Packet

EDGE_ACL = """\
ip access-list extended EDGE_IN
 10 permit udp any any eq 53
 20 permit tcp 10.0.0.0 0.255.255.255 any
 30 deny ip any any
"""

INTENT = (
    "Add a rule that denies tcp traffic from 10.9.0.0/16 to any on "
    "destination port 22."
)


def operator_intent(packet: Packet) -> tuple:
    """The operator's ground truth: SSH from 10.9/16 must be blocked;
    everything else behaves as before."""
    blocked = (
        packet.protocol == 6
        and packet.dst_port == 22
        and str(packet.src_ip).startswith("10.9.")
    )
    if blocked:
        return ("deny",)
    return eval_acl(parse_config(EDGE_ACL).acl("EDGE_IN"), packet).behaviour_key()


def main() -> None:
    print("The existing ACL:\n")
    print(EDGE_ACL)
    print("The update intent:\n ", INTENT, "\n")

    session = ClarifySession(store=parse_config(EDGE_ACL))
    report = session.request(
        INTENT, "EDGE_IN", oracle=IntentOracle(operator_intent)
    )

    print(f"pipeline: {report.llm_calls} LLM calls, "
          f"{report.attempts} synthesis attempt(s)")
    print(f"overlapping rules (indices): {list(report.overlaps)}")
    print(f"questions asked: {report.questions}")
    print(f"rule inserted at position {report.position}\n")

    acl = session.store.acl("EDGE_IN")
    print(render_config(session.store))

    print("\nBehaviour checks:")
    probes = [
        ("SSH from 10.9.1.1", Packet.build("10.9.1.1", "8.8.8.8", dst_port=22)),
        ("HTTPS from 10.9.1.1", Packet.build("10.9.1.1", "8.8.8.8", dst_port=443)),
        ("SSH from 10.8.1.1", Packet.build("10.8.1.1", "8.8.8.8", dst_port=22)),
        ("DNS from anywhere", Packet.build("4.4.4.4", "8.8.8.8", protocol=17, dst_port=53)),
    ]
    for label, packet in probes:
        print(f"  {label:<22} -> {eval_acl(acl, packet).action}")


if __name__ == "__main__":
    main()
