#!/usr/bin/env python3
"""Config-to-behaviour round trip: synthesise, render, parse, simulate.

Clarify's output is configuration text.  This example closes the loop
the way an operator pipeline would: the Figure 3 routers are synthesised
incrementally, rendered as complete IOS device files (interfaces,
``router bgp`` blocks, per-neighbor route-map chains, origination maps),
parsed back from nothing but that text, reassembled into a network by
matching neighbor addresses, re-simulated, and the five global policies
re-checked.

Run:  python examples/device_roundtrip.py [--show ROUTER]
"""

import argparse

from repro.bgp import simulate
from repro.bgp.fromconfig import network_from_devices
from repro.config.device import parse_device
from repro.evalcase.devices import figure3_device_files
from repro.evalcase.figure3 import check_global_policies


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--show", metavar="ROUTER", help="print one router's device file"
    )
    args = parser.parse_args()

    print("Synthesising Figure 3 and rendering device files...")
    files = figure3_device_files()
    for name, text in sorted(files.items()):
        print(f"  {name:<6} {len(text.splitlines()):>3} lines")

    if args.show:
        print(f"\n===== {args.show} =====")
        print(files[args.show])

    print("\nReassembling the network from the rendered text only...")
    devices = [parse_device(text) for text in files.values()]
    network = network_from_devices(devices)
    ribs = simulate(network)

    print("\nGlobal policies on the reassembled network:")
    for policy, holds in check_global_policies(ribs).items():
        print(f"  [{'PASS' if holds else 'FAIL'}] {policy}")


if __name__ == "__main__":
    main()
