"""Benchmark: disambiguation cost on realistic corpus ACLs (§3 meets §4).

Section 3 shows overlaps are pervasive in real ACLs; Section 4 argues
disambiguation costs only logarithmically many questions.  This bench
connects the two: insert a canonical new rule into a sample of campus
ACLs and measure the questions asked per insertion against the overlap
count.
"""

import math

from repro.analysis import eval_acl
from repro.config import parse_config
from repro.core import CountingOracle, IntentOracle, disambiguate_acl_rule
from repro.config.store import ConfigStore
from repro.synth import generate_campus_corpus

#: The update: block SSH from one management subnet.
NEW_RULE_TEXT = (
    "ip access-list extended NEW\n"
    " 10 deny tcp 172.31.0.0 0.0.255.255 any eq 22"
)

SAMPLE = 60


def security_first_intent(acl):
    """Ground truth: the new deny takes precedence over everything."""

    def intended(packet):
        if (
            packet.protocol == 6
            and packet.dst_port == 22
            and str(packet.src_ip).startswith("172.31.")
        ):
            return ("deny",)
        return eval_acl(acl, packet).behaviour_key()

    return intended


def run_insertions():
    corpus = generate_campus_corpus(total_acls=600, route_maps=5)
    snippet = parse_config(NEW_RULE_TEXT)
    rows = []
    for acl in corpus.acls[:SAMPLE]:
        store = ConfigStore()
        store.add_acl(acl)
        oracle = CountingOracle(IntentOracle(security_first_intent(acl)))
        result = disambiguate_acl_rule(store, acl.name, snippet, oracle)
        rows.append((acl.name, len(result.overlaps), result.question_count))
    return rows


def test_bench_corpus_questions(benchmark, report):
    rows = benchmark.pedantic(run_insertions, rounds=1, iterations=1)

    total_overlaps = sum(overlaps for _n, overlaps, _q in rows)
    total_questions = sum(questions for _n, _o, questions in rows)
    worst = max(rows, key=lambda r: r[2])
    for name, overlaps, questions in rows:
        bound = math.ceil(math.log2(overlaps + 1)) if overlaps else 0
        assert questions <= bound, (name, overlaps, questions)
    # Questions are far cheaper than overlaps on realistic ACLs.
    assert total_questions < total_overlaps / 2 or total_overlaps < 4

    buckets = {}
    for _name, overlaps, questions in rows:
        buckets.setdefault(overlaps, []).append(questions)
    lines = [f"{'overlaps':<10}{'ACLs':<7}{'mean questions':<16}{'log2 bound'}"]
    for overlaps in sorted(buckets):
        qs = buckets[overlaps]
        bound = math.ceil(math.log2(overlaps + 1)) if overlaps else 0
        lines.append(
            f"{overlaps:<10}{len(qs):<7}{sum(qs) / len(qs):<16.2f}{bound}"
        )
    lines.append(
        f"\ntotals over {len(rows)} sampled ACLs: {total_overlaps} "
        f"overlapping rules, {total_questions} questions asked "
        f"(worst case {worst[2]} on {worst[0]} with {worst[1]} overlaps)"
    )
    report("disambiguation cost on corpus ACLs (§3 meets §4)", "\n".join(lines))
