"""Benchmark/ablation: §7 — do richer LLM augmentations help?

The paper asks whether augmentation beyond plain few-shot examples
(chain-of-thought, RAG, agentic loops) would improve synthesis.  This
bench measures one concrete axis with everything else held fixed:
**self-consistency majority voting** in front of a fault-injected model,
against the plain verify-and-retry loop, at equal or lower total model
call budgets.
"""

from repro.core import SynthesisPunt
from repro.core.synthesis import SynthesisPipeline
from repro.llm import FaultyLLM, SimulatedLLM
from repro.llm.strategies import MajorityVoteLLM

INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)

ERROR_RATES = (0.3, 0.5, 0.7)
TRIALS = 30
MAX_ATTEMPTS = 3


def run(error_rate: float, vote_k: int):
    """(successes, punts, mean synthesis attempts) over TRIALS."""
    successes = punts = 0
    attempts_total = 0
    for trial in range(TRIALS):
        inner = FaultyLLM(SimulatedLLM(), error_rate, seed=trial)
        llm = MajorityVoteLLM(inner, k=vote_k) if vote_k > 1 else inner
        pipeline = SynthesisPipeline(llm, max_attempts=MAX_ATTEMPTS)
        try:
            result = pipeline.synthesize(INTENT)
        except SynthesisPunt:
            punts += 1
            attempts_total += MAX_ATTEMPTS
        else:
            successes += 1
            attempts_total += result.attempts
    return successes, punts, attempts_total / TRIALS


def sweep():
    rows = []
    for rate in ERROR_RATES:
        plain = run(rate, vote_k=1)
        voted = run(rate, vote_k=5)
        rows.append((rate, plain, voted))
    return rows


def test_bench_llm_strategies(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'fault rate':<12}{'plain attempts':<16}{'plain punts':<13}"
        f"{'voted attempts':<16}{'voted punts'}"
    ]
    for rate, (p_ok, p_punts, p_attempts), (v_ok, v_punts, v_attempts) in rows:
        lines.append(
            f"{rate:<12}{p_attempts:<16.2f}{p_punts:<13}{v_attempts:<16.2f}"
            f"{v_punts}"
        )

    by_rate = {r: (plain, voted) for r, plain, voted in rows}
    # Below the p=0.5 crossover, voting reduces retry pressure without
    # increasing punts...
    for rate in (0.3, 0.5):
        plain, voted = by_rate[rate]
        assert voted[1] <= plain[1]
        assert voted[2] <= plain[2] + 1e-9
    # ...and above it, the majority itself flips to corrupted outputs,
    # so voting stops helping — the theoretically expected crossover
    # (self-consistency assumes a mostly-correct sampler).
    plain, voted = by_rate[0.7]
    assert voted[1] >= plain[1]

    report(
        "§7 ablation: self-consistency voting vs plain retry loop",
        "\n".join(lines)
        + "\n\nvoting reduces retry pressure below the p=0.5 crossover and"
        "\nstops helping above it; correctness is unchanged either way"
        "\n(only verified stanzas ever ship)",
    )
