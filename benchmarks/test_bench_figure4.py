"""Benchmark: Figure 4 — incremental synthesis of the Figure 3 routers.

Regenerates the paper's per-router table (#route-maps, #LLM calls,
#disambiguation interactions) and checks the five global policies on
the simulated network, plus the §5 claim that every stanza synthesised
in a single pass.
"""

from repro.evalcase import build_figure3, figure4_rows

PAPER_FIGURE_4 = {
    "M": (4, 9, 5),
    "R1": (5, 12, 6),
    "R2": (5, 12, 6),
}


def test_bench_figure4(benchmark, report):
    result = benchmark.pedantic(build_figure3, rounds=1, iterations=1)

    rows = figure4_rows(result.stats)
    assert {name: tuple(rest) for name, *rest in rows} == PAPER_FIGURE_4
    assert all(result.policy_results.values()), result.policy_results
    for stats in result.stats:
        assert stats.llm_calls == 3 * stats.stanzas  # single-pass synthesis

    lines = [
        f"{'Router':<8}{'#Route-maps':<14}{'#LLM calls':<12}{'#Disambiguation'}"
    ]
    for name, maps, calls, interactions in rows:
        lines.append(f"{name:<8}{maps:<14}{calls:<12}{interactions}")
    lines.append("")
    lines.append("paper:   M 4/9/5, R1 5/12/6, R2 5/12/6  -> reproduced exactly")
    lines.append("global policies: " + ", ".join(
        f"{k}={'PASS' if v else 'FAIL'}" for k, v in result.policy_results.items()
    ))
    report("Figure 4 (per-router synthesis statistics)", "\n".join(lines))
