"""Benchmark/ablation: §4 — the disambiguator queries logarithmically.

Sweeps the number of overlapping stanzas n and measures how many
questions each strategy asks to place a new stanza at the worst-case
position:

* FULL (the paper's §4 binary search)  — ceil(log2(n+1));
* LINEAR (ablation baseline)           — O(n);
* TOP_BOTTOM (the paper's prototype)   — exactly 1, but it can only
  realise the top or bottom placement.

Also checks the §7 limitation: TOP_BOTTOM cannot implement a
middle-of-map intent, while FULL places it correctly.
"""

import math


from repro.analysis import eval_route_map
from repro.config import parse_config
from repro.config.names import rename_snippet_lists
from repro.core import (
    CountingOracle,
    DisambiguationMode,
    IntentOracle,
    disambiguate_stanza,
)

SWEEP = (2, 4, 8, 16, 32, 63)


def overlapping_map(n: int):
    """A route-map of n deny stanzas, each matching one metric value."""
    lines = []
    for i in range(n):
        lines.append(f"route-map RM deny {10 * (i + 1)}")
        lines.append(f" match metric {i}")
    return parse_config("\n".join(lines))


def new_permit_snippet(store):
    snippet = parse_config("route-map NEW permit 10\n set local-preference 200")
    return rename_snippet_lists(snippet, store)


def middle_intent(n: int):
    """Ground truth: the new stanza belongs exactly in the middle."""

    def intended(route, n=n):
        if route.metric < n // 2:
            return ("deny", None)
        return ("permit", route.with_updates(local_preference=200))

    return intended


def questions_for(n: int, mode: DisambiguationMode) -> int:
    store = overlapping_map(n)
    snippet = new_permit_snippet(store)
    oracle = CountingOracle(IntentOracle(middle_intent(n)))
    result = disambiguate_stanza(store, "RM", snippet, oracle, mode)
    if mode is DisambiguationMode.FULL or mode is DisambiguationMode.LINEAR:
        assert result.position == n // 2, (mode, n, result.position)
    return result.question_count


def run_sweep():
    rows = []
    for n in SWEEP:
        full = questions_for(n, DisambiguationMode.FULL)
        linear = questions_for(n, DisambiguationMode.LINEAR)
        rows.append((n, full, linear))
    return rows


def test_bench_disambiguation_queries(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [f"{'n overlaps':<12}{'binary (§4)':<14}{'linear scan':<14}{'ceil(log2(n+1))'}"]
    for n, full, linear in rows:
        bound = math.ceil(math.log2(n + 1))
        assert full <= bound, (n, full)
        # Linear scan to the middle costs ~n/2 questions; binary search
        # must win by a growing factor.
        assert linear >= n // 2
        if n >= 8:
            assert full < linear
        lines.append(f"{n:<12}{full:<14}{linear:<14}{bound}")
    report("§4 ablation: questions vs overlap count", "\n".join(lines))


def test_top_bottom_cannot_place_in_middle(report):
    n = 8
    store = overlapping_map(n)
    snippet = new_permit_snippet(store)

    # With FULL mode the middle intent is realised...
    oracle = CountingOracle(IntentOracle(middle_intent(n)))
    full = disambiguate_stanza(
        store, "RM", snippet, oracle, DisambiguationMode.FULL
    )
    assert full.position == n // 2

    # ...with TOP_BOTTOM the intent oracle cannot even answer: neither
    # offered option matches the intended middle semantics on every
    # differential input, so a fixed preference lands at top or bottom.
    from repro.core import ScriptedOracle

    for choice, position in ((1, 0), (2, n)):
        result = disambiguate_stanza(
            store,
            "RM",
            snippet,
            CountingOracle(ScriptedOracle([choice])),
            DisambiguationMode.TOP_BOTTOM,
        )
        assert result.position == position
        assert result.question_count == 1
        # Neither placement implements the middle intent.
        rm = result.store.route_map("RM")
        from repro.route import BgpRoute

        low = BgpRoute.build("1.0.0.0/8", metric=0)
        high = BgpRoute.build("1.0.0.0/8", metric=n - 1)
        low_result = eval_route_map(rm, result.store, low)
        high_result = eval_route_map(rm, result.store, high)
        intended = middle_intent(n)
        ok_low = low_result.behaviour_key() == intended(low)
        ok_high = high_result.behaviour_key() == intended(high)
        assert not (ok_low and ok_high)
