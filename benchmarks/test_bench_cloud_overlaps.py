"""Benchmark: §3.1 — overlap frequency in the cloud-WAN corpus.

Regenerates the paper's cloud statistics at full corpus size:

* 237 non-identical ACLs, 69 with at least one conflicting overlap,
  48 of those with more than 20, one border ACL with >100 pairs;
* 800 routing policies, 140 with stanza overlaps, 3 with more than 20.

Like the campus bench, the study runs through the
:mod:`repro.perf.campaign` runner with a fixed chunk count so the
``cache.*`` counters it contributes are machine-independent.
"""

from repro.perf import campaign
from repro.synth.cloud import (
    HEAVY_ACLS,
    HEAVY_ROUTE_MAPS,
    OVERLAPPING_ACLS,
    OVERLAPPING_ROUTE_MAPS,
    TOTAL_ACLS,
    TOTAL_ROUTE_MAPS,
)


def analyse():
    workers = min(4, campaign.default_workers())
    return campaign.cloud_overlap_study(workers=workers, chunks=4)


def test_bench_cloud_overlaps(benchmark, report):
    acl_stats, rm_stats, chain_stats = benchmark.pedantic(
        analyse, rounds=1, iterations=1
    )
    total_chains, chains_with_overlaps, cross_map_pairs = chain_stats

    # §3.1 ACL shape, reproduced exactly by construction.
    assert acl_stats.total == TOTAL_ACLS == 237
    assert acl_stats.with_conflicts == OVERLAPPING_ACLS == 69
    assert acl_stats.with_many_conflicts == HEAVY_ACLS == 48
    assert acl_stats.max_conflict_count > 100  # the border ACL

    # §3.1 route-map shape.
    assert rm_stats.total == TOTAL_ROUTE_MAPS == 800
    assert rm_stats.with_overlaps == OVERLAPPING_ROUTE_MAPS == 140
    assert rm_stats.with_many_overlaps == HEAVY_ROUTE_MAPS == 3

    # §3.1: "there can be overlaps ... also between different route maps
    # applied to the same neighbor."
    assert chains_with_overlaps > 0
    assert cross_map_pairs > 0

    report(
        "§3.1 cloud WAN overlaps",
        acl_stats.render()
        + "\n\n"
        + rm_stats.render()
        + f"\nneighbor chains analysed:           {total_chains}"
        + f"\n  with cross-map overlaps:          {chains_with_overlaps}"
        + f"\n  cross-map overlapping pairs:      {cross_map_pairs}"
        + "\n\npaper: 237 ACLs / 69 overlapping / 48 with >20 / one >100;"
        + " 800 route-maps / 140 overlapping / 3 with >20; cross-map"
        + " overlaps exist in neighbor chains -> reproduced",
    )
