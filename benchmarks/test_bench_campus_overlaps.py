"""Benchmark: §3.2 — overlap frequency in the campus corpus.

Regenerates the paper's campus statistics at full corpus size (11,088
ACLs, 169 route-maps):

* 37.7% of ACLs have conflicting rule overlaps; 27% of those exceed 20;
* excluding proper-subset pairs, 18.6% have non-trivial overlaps, 16.3%
  of those exceed 20;
* 2 of 169 route-maps have overlapping stanzas; one has three
  overlapping pairs, two of them conflicting.

The study runs through the :mod:`repro.perf.campaign` process-pool
runner with a **fixed chunk count**: the per-chunk cache counters are a
pure function of the partition, so the snapshot this bench contributes
to ``BENCH_obs.json`` is identical on a laptop and a many-core CI box.
"""

from repro.perf import campaign


def analyse():
    workers = min(4, campaign.default_workers())
    return campaign.campus_overlap_study(workers=workers, chunks=4)


def test_bench_campus_overlaps(benchmark, report):
    acl_stats, rm_stats, triple, device_count = benchmark.pedantic(
        analyse, rounds=1, iterations=1
    )
    assert device_count == 1421  # "1421 device configurations"

    # §3.2 ACL percentages, to one decimal place.
    assert acl_stats.total == 11088
    assert round(acl_stats.conflict_fraction, 1) == 37.7
    assert round(acl_stats.many_conflict_fraction) == 27
    assert round(acl_stats.nontrivial_fraction, 1) == 18.6
    assert round(acl_stats.many_nontrivial_fraction, 1) == 16.3

    # §3.2 route-maps: 2 of 169 overlap; the special one has 3 pairs,
    # 2 conflicting.
    assert rm_stats.total == 169
    assert rm_stats.with_overlaps == 2
    assert triple.overlap_count == 3
    assert triple.conflict_count == 2

    report(
        "§3.2 campus overlaps",
        f"device configurations:              {device_count}\n"
        + acl_stats.render()
        + "\n\n"
        + rm_stats.render()
        + f"\nCAMPUS_SPECIAL_TRIPLE: {triple.overlap_count} overlapping "
        + f"pairs, {triple.conflict_count} conflicting"
        + "\n\npaper: 37.7% conflicting / 27% of those >20 / 18.6% "
        + "non-trivial / 16.3% of those >20; 2/169 route-maps, one with "
        + "3 pairs (2 conflicting) -> reproduced",
    )
