"""Benchmark: the §2 walkthrough (ISP_OUT + the paper's intent).

Regenerates the §2.1/§2.2 artifacts — the synthesised snippet, the JSON
spec, and the differential example — and times one full Clarify cycle.
"""

import json

from repro.analysis import eval_route_map
from repro.config import parse_config
from repro.core import ClarifySession, DisambiguationMode, ScriptedOracle
from repro.llm import PromptDatabase, SimulatedLLM, TaskKind
from repro.route import BgpRoute

ISP_OUT = """
ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
"""

INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)


def run_full_cycle():
    session = ClarifySession(
        store=parse_config(ISP_OUT),
        oracle=ScriptedOracle([1]),
        mode=DisambiguationMode.TOP_BOTTOM,
    )
    report = session.request(INTENT, "ISP_OUT")
    return session, report


def test_bench_walkthrough_cycle(benchmark, report):
    session, update = run_full_cycle()
    # Fixed rounds keep the obs counters deterministic run to run (the
    # calibrated mode repeats the workload a machine-dependent number of
    # times, which would make BENCH_obs.json non-reproducible).
    benchmark.pedantic(run_full_cycle, rounds=3, iterations=1)

    # Paper shape: single-pass synthesis, one differential question,
    # Figure 2(a) as the outcome, the spec exactly as printed in §2.1.
    assert update.attempts == 1
    assert update.llm_calls == 3
    assert update.questions == 1
    assert update.position == 0

    spec = json.loads(
        SimulatedLLM().complete(
            PromptDatabase().system_prompt(TaskKind.ROUTE_MAP_SPEC), INTENT
        )
    )
    assert spec == {
        "permit": True,
        "prefix": ["100.0.0.0/16:16-23"],
        "community": "/_300:3_/",
        "set": {"metric": 55},
    }

    rm = session.store.route_map("ISP_OUT")
    probe = BgpRoute.build("100.0.0.0/16", as_path=[32], communities=["300:3"])
    outcome = eval_route_map(rm, session.store, probe)
    assert outcome.permitted() and outcome.output.metric == 55

    question = session.oracle.questions[0].difference
    report(
        "§2 walkthrough",
        "spec: " + json.dumps(spec) + "\n\ndifferential example:\n"
        + question.render(),
    )
