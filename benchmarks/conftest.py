"""Shared fixtures and report helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper and
*asserts* the reproduced shape (who wins, by what factor, where the
thresholds land), so ``pytest benchmarks/ --benchmark-only`` doubles as
the reproduction check.  Each module also appends its rows to
``benchmarks/results.txt`` so the numbers survive pytest's capture.
"""

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def report():
    """Append human-readable result blocks to benchmarks/results.txt."""
    handle = RESULTS_PATH.open("a")

    def write(title: str, body: str) -> None:
        handle.write(f"\n=== {title} ===\n{body}\n")
        handle.flush()

    yield write
    handle.close()


def pytest_sessionstart(session):
    # Start each benchmark session with a fresh results file.
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
