"""Shared fixtures and report helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper and
*asserts* the reproduced shape (who wins, by what factor, where the
thresholds land), so ``pytest benchmarks/ --benchmark-only`` doubles as
the reproduction check.  Each module also appends its rows to
``benchmarks/results.txt`` so the numbers survive pytest's capture.

The whole session additionally runs under a metrics-only
:class:`repro.obs.Recorder` (spans disabled — benchmark repetition
would accumulate millions of them), and the aggregate counters and
histograms are written to ``benchmarks/BENCH_obs.json`` at session end.
That file is the per-run observability baseline future performance PRs
diff against: LLM calls, verify retries, disambiguation questions, and
route/header-space operation counts for the full benchmark suite.
"""

import pathlib

import pytest

from repro import obs

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
OBS_SNAPSHOT_PATH = pathlib.Path(__file__).parent / "BENCH_obs.json"


@pytest.fixture(scope="session")
def report():
    """Append human-readable result blocks to benchmarks/results.txt."""
    handle = RESULTS_PATH.open("a")

    def write(title: str, body: str) -> None:
        handle.write(f"\n=== {title} ===\n{body}\n")
        handle.flush()

    yield write
    handle.close()


def pytest_sessionstart(session):
    # Start each benchmark session with a fresh results file.
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
    obs.install(obs.Recorder(capture_spans=False))


def pytest_sessionfinish(session, exitstatus):
    recorder = obs.get_recorder()
    if isinstance(recorder, obs.Recorder):
        OBS_SNAPSHOT_PATH.write_text(obs.to_json(recorder) + "\n")
        obs.uninstall()
