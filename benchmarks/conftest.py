"""Shared fixtures and report helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper and
*asserts* the reproduced shape (who wins, by what factor, where the
thresholds land), so ``pytest benchmarks/ --benchmark-only`` doubles as
the reproduction check.  Each module contributes result blocks through
the session-scoped ``report`` fixture; the blocks are buffered and
``benchmarks/results.txt`` is rewritten **atomically** at session end
(temp file + rename), so a crashed or interrupted run can never leave a
truncated results file behind.

The whole session additionally runs under a metrics-only
:class:`repro.obs.Recorder` (spans disabled — benchmark repetition
would accumulate millions of them) with ``time_spans=True``, so every
pipeline phase still lands its duration in a ``span.<name>`` histogram.
The aggregate counters and histograms are written to
``benchmarks/BENCH_obs.json`` at session end.  ``clarify bench-check``
diffs that file against the committed ``benchmarks/BASELINE_obs.json``:
counters exactly (the workload is deterministic — see the pedantic
fixed-round benchmarks), span timings ratio-bounded.

The session starts from cold :mod:`repro.perf` caches, and the cache
hit/miss growth over the whole session is published as ``cache.*``
counters into the snapshot at session end (campaign-internal cache
activity is isolated per chunk and already merged in by the campaign
runner, so the two never double-count).
"""

import os
import pathlib
import tempfile

import pytest

from repro import obs
from repro.perf import cache as perf_cache

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"
OBS_SNAPSHOT_PATH = pathlib.Path(__file__).parent / "BENCH_obs.json"

_report_blocks = []
_cache_baseline = {}


def _write_atomic(path: pathlib.Path, text: str) -> None:
    """Replace ``path``'s contents in one step (temp file + rename)."""
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@pytest.fixture(scope="session")
def report():
    """Buffer human-readable result blocks for benchmarks/results.txt."""

    def write(title: str, body: str) -> None:
        _report_blocks.append(f"\n=== {title} ===\n{body}\n")

    return write


def pytest_sessionstart(session):
    _report_blocks.clear()
    perf_cache.clear_caches()
    _cache_baseline.clear()
    _cache_baseline.update(perf_cache.cache_totals())
    obs.install(obs.Recorder(capture_spans=False, time_spans=True))


def pytest_sessionfinish(session, exitstatus):
    if _report_blocks:
        _write_atomic(RESULTS_PATH, "".join(_report_blocks))
    recorder = obs.get_recorder()
    if isinstance(recorder, obs.Recorder):
        perf_cache.publish_counters(_cache_baseline)
        _write_atomic(OBS_SNAPSHOT_PATH, obs.to_json(recorder) + "\n")
        obs.uninstall()
