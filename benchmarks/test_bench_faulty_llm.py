"""Benchmark/ablation: the Fig. 1 verification loop under LLM faults.

The paper's pipeline "continues until the LLM finally produces the
correct output or we reach a threshold and punt to the user" (§2.1).
This bench injects realistic LLM error modes (wrong numbers, flipped
actions, broken syntax) at increasing rates and measures:

* how many synthesis attempts the verified pipeline needs;
* how often it punts at the retry threshold;
* the ablation: how often an *unverified* pipeline (trusting the LLM's
  first output) would have shipped a wrong or unparseable stanza.
"""

from repro.config import ConfigParseError, parse_config
from repro.core import RouteMapSpec, SynthesisPunt, verify_route_map_snippet
from repro.core.synthesis import SynthesisPipeline
from repro.llm import FaultyLLM, PromptDatabase, SimulatedLLM, TaskKind

INTENT = (
    "Write a route-map stanza that permits routes containing the prefix "
    "100.0.0.0/16 with mask length less than or equal to 23 and tagged "
    "with the community 300:3. Their MED value should be set to 55."
)

ERROR_RATES = (0.0, 0.2, 0.4, 0.6, 0.8)
TRIALS = 40
MAX_ATTEMPTS = 5


def run_verified(error_rate: float):
    """(mean attempts, punt count) over TRIALS runs of the full loop."""
    attempts_total = 0
    punts = 0
    successes = 0
    for trial in range(TRIALS):
        llm = FaultyLLM(SimulatedLLM(), error_rate, seed=trial)
        pipeline = SynthesisPipeline(llm, max_attempts=MAX_ATTEMPTS)
        try:
            result = pipeline.synthesize(INTENT)
        except SynthesisPunt:
            punts += 1
            attempts_total += MAX_ATTEMPTS
        else:
            successes += 1
            attempts_total += result.attempts
    return attempts_total / TRIALS, punts, successes


def run_unverified(error_rate: float):
    """Ablation: ship the first LLM output; count wrong results."""
    db = PromptDatabase()
    spec = RouteMapSpec.from_json(
        SimulatedLLM().complete(db.system_prompt(TaskKind.ROUTE_MAP_SPEC), INTENT)
    )
    wrong = 0
    for trial in range(TRIALS):
        llm = FaultyLLM(SimulatedLLM(), error_rate, seed=trial)
        raw = llm.complete(db.system_prompt(TaskKind.ROUTE_MAP_SYNTH), INTENT)
        try:
            snippet = parse_config(raw)
        except ConfigParseError:
            wrong += 1
            continue
        if not verify_route_map_snippet(snippet, spec).ok:
            wrong += 1
    return wrong


def run_sweep():
    rows = []
    for rate in ERROR_RATES:
        mean_attempts, punts, successes = run_verified(rate)
        unverified_wrong = run_unverified(rate)
        rows.append((rate, mean_attempts, punts, successes, unverified_wrong))
    return rows


def test_bench_faulty_llm(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = [
        f"{'error rate':<12}{'attempts':<10}{'punts':<8}{'verified ok':<13}"
        f"{'unverified wrong'}"
    ]
    for rate, mean_attempts, punts, successes, unverified_wrong in rows:
        lines.append(
            f"{rate:<12}{mean_attempts:<10.2f}{punts:<8}{successes:<13}"
            f"{unverified_wrong}/{TRIALS}"
        )

    by_rate = {r[0]: r for r in rows}
    # Fault-free: single pass, no punts (the §5 observation).
    assert by_rate[0.0][1] == 1.0
    assert by_rate[0.0][2] == 0
    assert by_rate[0.0][4] == 0
    # Verified successes never ship a wrong stanza; the unverified
    # ablation ships wrong configs roughly at the error rate.
    for rate, mean_attempts, punts, successes, unverified_wrong in rows:
        if rate > 0:
            assert unverified_wrong > 0
            assert mean_attempts >= 1.0
        # More faults -> more attempts (monotone within noise).
    assert by_rate[0.8][1] > by_rate[0.2][1]
    assert by_rate[0.8][4] > by_rate[0.2][4]

    report(
        "Fig. 1 verification loop under fault injection",
        "\n".join(lines)
        + "\n\nverified pipeline never ships an unverified stanza; "
        "unverified ablation ships wrong configs at ~the fault rate",
    )
