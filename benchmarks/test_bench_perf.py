"""Benchmark: the ``repro.perf`` layer itself (speedup + equivalence).

Three measurements, written to ``benchmarks/BENCH_perf.json`` (and a
``results.txt`` block):

* the 64-rule overlap-analysis and first-match-reachability rows from
  cold caches, against the timings committed before the cache layer
  existed — the headline speedup the layer must sustain (>= 3x);
* the same workloads under :func:`repro.perf.cache.disabled`, proving
  the memoized engines return *identical* reports and spaces while
  quantifying what the caches buy;
* a campaign run three ways — serial, auto engine (the scaling-gate
  number), and forced persistent pool — asserting identical results on
  every leg and that parallel does not lose to serial.

Timings are best-of-N from cold caches: the suite asserts on the
minimum (robust against scheduler noise) and reports it.
"""

import json
import time

from repro import obs
from repro.perf import cache as perf
from repro.perf import campaign
from repro.perf import pool as worker_pool

from conftest import OBS_SNAPSHOT_PATH, _write_atomic

PERF_SNAPSHOT_PATH = OBS_SNAPSHOT_PATH.parent / "BENCH_perf.json"

#: The 64-rule rows of benchmarks/results.txt as committed by PR 3,
#: before the repro.perf cache layer existed.  The acceptance bar for
#: that PR was a >=3x improvement on both.
COMMITTED_OVERLAP64 = 0.1645
COMMITTED_REACH64 = 0.1894

#: The uncached 64-rule overlap row as committed before the batch
#: interval kernels existed (the per-pair space walk).  The kernel
#: sweep must beat it by >=1.5x single-threaded, caches off.
PRIOR_UNCACHED_OVERLAP64 = 0.02898

ROUNDS = 5

#: Campaign legs are heavier; best-of-three bounds the suite's runtime
#: while still shedding scheduler hiccups.  Rounds are interleaved
#: across the engines so clock drift between phases cannot bias one
#: leg against another.
CAMPAIGN_ROUNDS = 3


def _overlap64():
    import random

    from repro.overlap import acl_overlap_report
    from repro.synth.builders import PrefixPool, crossing_acl

    rng = random.Random(42)
    acl = crossing_acl("X", rng, PrefixPool(rng), permits=32, denies=32)
    start = time.perf_counter()
    report = acl_overlap_report(acl)
    elapsed = time.perf_counter() - start
    assert report.overlap_count == 1024
    return elapsed, report


def _reach64():
    import random

    from repro.analysis import acl_reachable_spaces
    from repro.synth.builders import PrefixPool, shadowed_acl

    rng = random.Random(42)
    acl = shadowed_acl("S", rng, PrefixPool(rng), permits=63)
    start = time.perf_counter()
    reaches = acl_reachable_spaces(acl, include_implicit_deny=True)
    elapsed = time.perf_counter() - start
    assert len(reaches) == 65
    return elapsed, reaches


def _best_of(fn, rounds=ROUNDS):
    """Minimum elapsed time over ``rounds`` cold-cache runs + one result."""
    best, result = None, None
    for _ in range(rounds):
        with perf.isolated():
            elapsed, outcome = fn()
        if best is None or elapsed < best:
            best, result = elapsed, outcome
    return best, result


def test_bench_perf_speedup_and_equivalence(benchmark, report):
    def measure():
        overlap_s, overlap_result = _best_of(_overlap64)
        reach_s, reach_result = _best_of(_reach64)
        with perf.disabled():
            overlap_off_s, overlap_off = _overlap64()
            reach_off_s, reach_off = _reach64()
        with perf.isolated():
            before = perf.cache_totals()
            _overlap64()
            _reach64()
            totals = perf.cache_totals()
        hits = totals["cache.hits"] - before.get("cache.hits", 0)
        misses = totals["cache.misses"] - before.get("cache.misses", 0)
        return (
            overlap_s,
            reach_s,
            overlap_off_s,
            reach_off_s,
            overlap_result == overlap_off,
            reach_result == reach_off,
            hits,
            misses,
        )

    (
        overlap_s,
        reach_s,
        overlap_off_s,
        reach_off_s,
        overlap_same,
        reach_same,
        hits,
        misses,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The memoized engines are a pure speedup: identical outputs.
    assert overlap_same, "overlap report differs with caches disabled"
    assert reach_same, "reachable spaces differ with caches disabled"

    overlap_speedup = COMMITTED_OVERLAP64 / overlap_s
    reach_speedup = COMMITTED_REACH64 / reach_s
    # The cache layer's acceptance bar: both 64-rule rows at least 3x
    # faster than the timings committed before it existed.
    assert overlap_speedup >= 3.0, f"overlap64 speedup {overlap_speedup:.2f}x"
    assert reach_speedup >= 3.0, f"reach64 speedup {reach_speedup:.2f}x"

    # The batch kernels' acceptance bar: the uncached overlap sweep
    # (caches buy nothing, so this isolates the kernels) at least 1.5x
    # faster than the per-pair walk committed before them.
    kernel_speedup = PRIOR_UNCACHED_OVERLAP64 / overlap_off_s
    assert kernel_speedup >= 1.5, f"kernel speedup {kernel_speedup:.2f}x"

    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    snapshot = {
        "schema_version": 1,
        "meta": obs.run_metadata(),
        "committed": {
            "overlap64_s": COMMITTED_OVERLAP64,
            "reach64_s": COMMITTED_REACH64,
            "prior_uncached_overlap64_s": PRIOR_UNCACHED_OVERLAP64,
        },
        "cached": {"overlap64_s": overlap_s, "reach64_s": reach_s},
        "uncached": {"overlap64_s": overlap_off_s, "reach64_s": reach_off_s},
        "speedup_vs_committed": {
            "overlap64": round(overlap_speedup, 2),
            "reach64": round(reach_speedup, 2),
        },
        "kernel_speedup_vs_prior_uncached": {
            "overlap64": round(kernel_speedup, 2),
        },
        "speedup_vs_uncached": {
            "overlap64": round(overlap_off_s / overlap_s, 2),
            "reach64": round(reach_off_s / reach_s, 2),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hit_rate, 4),
        },
        "identical_with_caches_disabled": True,
    }
    _write_atomic(
        PERF_SNAPSHOT_PATH.with_name("BENCH_perf.part.json"),
        json.dumps(snapshot, indent=2) + "\n",
    )

    report(
        "repro.perf: 64-rule speedup vs committed baseline",
        f"{'row':<12}{'committed (s)':<16}{'cached (s)':<14}"
        f"{'uncached (s)':<16}{'speedup'}\n"
        f"{'overlap64':<12}{COMMITTED_OVERLAP64:<16.4f}{overlap_s:<14.4f}"
        f"{overlap_off_s:<16.4f}{overlap_speedup:.1f}x\n"
        f"{'reach64':<12}{COMMITTED_REACH64:<16.4f}{reach_s:<14.4f}"
        f"{reach_off_s:<16.4f}{reach_speedup:.1f}x\n\n"
        f"results identical with caches disabled -> the layer is a pure "
        f"speedup ({hits} cache hits / {misses} misses, "
        f"{hit_rate:.0%} hit rate over one cold run of both rows; "
        f"uncached overlap64 {kernel_speedup:.1f}x faster than the "
        f"pre-kernel per-pair walk)",
    )


def _timed_study(pool_mode, workers):
    """One campus study on one engine; returns ``(result, seconds)``."""
    start = time.perf_counter()
    outcome = campaign.campus_overlap_study(
        workers=workers, chunks=4, total_acls=600, route_maps=20,
        pool=pool_mode,
    )
    return outcome, time.perf_counter() - start


def test_bench_perf_campaign_identity(benchmark, report):
    def measure():
        # Legs per round: serial; the auto engine production callers
        # get (a persistent pool on parallel hardware, in-process on a
        # single core — its best time is the scaling-gate number); and
        # a forced persistent pool, which exercises real worker
        # processes even on a one-core host where auto (correctly)
        # stays in-process.
        legs = [("serial", 1), ("auto", 2)]
        if worker_pool.fork_available():
            legs.append(("persistent", 2))
        results = {}
        times = {}
        for _ in range(CAMPAIGN_ROUNDS):
            for mode, workers in legs:
                outcome, elapsed = _timed_study(mode, workers)
                results[mode] = outcome
                times[mode] = min(times.get(mode, elapsed), elapsed)
        serial, parallel = results["serial"], results["auto"]
        pooled = results.get("persistent", parallel)
        return (
            serial, parallel, pooled,
            times["serial"], times["auto"], times.get("persistent"),
        )

    serial, parallel, pooled, serial_s, parallel_s, pooled_s = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    # The campaign contract: every engine is indistinguishable from the
    # serial fallback.
    assert serial == parallel
    assert serial == pooled
    identical = serial == parallel == pooled

    # The scaling contract: the engine callers actually get must not
    # lose to serial (the CI gate re-checks the written snapshot with
    # its own tolerance for shared runners).
    assert parallel_s <= serial_s * 1.25, (
        f"auto-engine campaign {parallel_s:.3f}s lost to serial "
        f"{serial_s:.3f}s"
    )

    existing = {}
    part_path = PERF_SNAPSHOT_PATH.with_name("BENCH_perf.part.json")
    if part_path.exists():
        existing = json.loads(part_path.read_text())
        part_path.unlink()
    engine = campaign._choose_engine("auto", 2)
    existing["campaign"] = {
        "study": "campus (600 ACLs, 20 route-maps)",
        "serial_s": round(serial_s, 4),
        "parallel_2worker_s": round(parallel_s, 4),
        "pooled_2worker_s": (
            round(pooled_s, 4) if pooled_s is not None else None
        ),
        "auto_engine": engine,
        "identical": identical,
    }
    _write_atomic(PERF_SNAPSHOT_PATH, json.dumps(existing, indent=2) + "\n")

    pooled_row = (
        f"persistent pool (2):  {pooled_s:.2f}s\n"
        if pooled_s is not None
        else ""
    )
    report(
        "repro.perf.campaign: serial vs parallel",
        "campus subset (600 ACLs, 20 route-maps), 4 chunks, "
        f"best of {CAMPAIGN_ROUNDS}\n"
        f"serial (1 worker):    {serial_s:.2f}s\n"
        f"auto engine (2):      {parallel_s:.2f}s  [{engine}]\n"
        f"{pooled_row}"
        "results and merged counters byte-identical on every engine "
        "(auto stays in-process on a single core, where serial is the "
        "optimum; counters depend on the fixed chunking, never on "
        "workers or engine)",
    )
