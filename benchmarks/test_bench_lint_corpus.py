"""Benchmark: the symbolic policy linter over the campus corpus.

Times `repro.lint` end to end — classifying every ACL of a scaled §3
campus corpus from its diagnostics alone — and asserts the archetype
cross-check: the linter must recover the generator's exact
clean/shadowed/crossing mix (zero false positives, zero false
negatives on a corpus with known ground truth).  Also times the
per-insertion gate on the §2 walkthrough shape so the `lint.*`
counters land in ``BENCH_obs.json``.
"""

from repro.config import parse_config
from repro.lint import lint_campus_corpus
from repro.lint.gate import gate_insertion
from repro.synth import generate_campus_corpus
from repro.synth.campus import TOTAL_ACLS, TOTAL_ROUTE_MAPS

SCALE = 0.01  # 110 ACLs, 1 route-map: the CLI's default --scale
SEED = 2025

GATE_BEFORE = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
"""

# A NARROW deny inserted at the bottom: inside WIDE, fully shadowed.
GATE_AFTER = """
ip prefix-list WIDE seq 10 permit 10.0.0.0/8 le 32
ip prefix-list NARROW seq 10 permit 10.1.0.0/16 le 32
route-map RM permit 10
 match ip address prefix-list WIDE
route-map RM deny 20
 match ip address prefix-list NARROW
"""


def lint_corpus():
    corpus = generate_campus_corpus(
        seed=SEED,
        total_acls=max(1, round(TOTAL_ACLS * SCALE)),
        route_maps=max(1, round(TOTAL_ROUTE_MAPS * SCALE)),
    )
    return lint_campus_corpus(corpus)


def test_bench_lint_campus_corpus(benchmark, report):
    result = benchmark.pedantic(lint_corpus, rounds=1, iterations=1)

    # The archetype mix is recovered exactly from diagnostics alone.
    assert result.matches_expected
    assert result.total_acls == round(TOTAL_ACLS * SCALE)
    assert result.observed.get("mixed", 0) == 0

    report(
        "repro.lint campus corpus cross-check",
        result.render()
        + "\n\nevery shadowed/crossing ACL flagged, clean ACLs silent "
        + "-> archetype shares recovered exactly",
    )


def run_gate():
    return gate_insertion(
        parse_config(GATE_BEFORE),
        parse_config(GATE_AFTER),
        "route-map",
        "RM",
        position=1,
    )


def test_bench_insertion_gate(benchmark, report):
    # Fixed rounds: calibrated repetition would make the lint.* counters
    # in BENCH_obs.json machine-dependent.
    gate = benchmark.pedantic(run_gate, rounds=3, iterations=1)

    # The gate spots that the inserted stanza is fully shadowed.
    assert gate.inserted_shadowed
    assert gate.new_counts.get("RM001") == 1
    assert any("fully shadowed" in warning for warning in gate.warnings)

    report(
        "repro.lint insertion gate",
        "\n".join(gate.warnings)
        + f"\n\nnew diagnostics: {gate.new_counts}",
    )
