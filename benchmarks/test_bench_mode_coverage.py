"""Benchmark/ablation: how many intents can each disambiguation mode realise?

The paper's prototype "only supports stanza insertions at the top or
bottom of the initial route-map" (§2.2) and lists full-position support
as future work (§7).  This bench quantifies the gap: over randomly
generated policies and intended insertion positions, what fraction of
intents does each mode realise behaviourally?

* FULL (the §4 binary search) must realise every §4-conformant intent;
* TOP_BOTTOM can only realise intents equivalent to a top or bottom
  placement — roughly 2 of the n+1 position classes.
"""

import random

from repro.analysis import eval_route_map
from repro.config import parse_config
from repro.config.names import rename_snippet_lists
from repro.core import IntentOracle, ScriptedOracle, disambiguate_stanza
from repro.core.disambiguator import DisambiguationMode
from repro.core.errors import DisambiguationError
from repro.route import BgpRoute

CASES = 40
MAX_STANZAS = 6


def random_case(rng: random.Random):
    n = rng.randint(2, MAX_STANZAS)
    metrics = rng.sample(range(10), n)
    lines = []
    for idx, metric in enumerate(metrics):
        action = rng.choice(["permit", "deny"])
        lines.append(f"route-map RM {action} {10 * (idx + 1)}")
        lines.append(f" match metric {metric}")
    store = parse_config("\n".join(lines))
    snippet_action = rng.choice(["permit", "deny"])
    snippet_lines = [f"route-map NEW {snippet_action} 10"]
    if snippet_action == "permit":
        snippet_lines.append(" set local-preference 777")
    snippet = rename_snippet_lists(parse_config("\n".join(snippet_lines)), store)
    position = rng.randint(0, n)
    return store, snippet, position


def realises_intent(store, snippet, position, mode) -> bool:
    target = store.route_map("RM")
    new_stanza = list(snippet.route_maps())[0].stanzas[0]
    reference = target.insert(new_stanza, position)

    def intended(route):
        return eval_route_map(reference, store, route).behaviour_key()

    if mode is DisambiguationMode.TOP_BOTTOM:
        # Drive the prototype with both possible answers and accept if
        # either outcome matches the intent (a charitable upper bound).
        outcomes = []
        for answer in (1, 2):
            result = disambiguate_stanza(
                store, "RM", snippet, ScriptedOracle([answer] * 4), mode
            )
            outcomes.append(result)
    else:
        try:
            outcomes = [
                disambiguate_stanza(
                    store, "RM", snippet, IntentOracle(intended), mode
                )
            ]
        except DisambiguationError:
            return False
    probes = [BgpRoute.build("1.0.0.0/8", metric=m) for m in range(0, 11)]
    for outcome in outcomes:
        produced = outcome.store.route_map("RM")
        if all(
            eval_route_map(produced, outcome.store, r).behaviour_key()
            == intended(r)
            for r in probes
        ):
            return True
    return False


def run_coverage():
    rng = random.Random(20251117)
    cases = [random_case(rng) for _ in range(CASES)]
    full = sum(
        realises_intent(*case, DisambiguationMode.FULL) for case in cases
    )
    top_bottom = sum(
        realises_intent(*case, DisambiguationMode.TOP_BOTTOM) for case in cases
    )
    return full, top_bottom


def test_bench_mode_coverage(benchmark, report):
    full, top_bottom = benchmark.pedantic(run_coverage, rounds=1, iterations=1)

    # The §4 algorithm realises every conformant intent; the prototype's
    # restriction misses a substantial fraction (§7's motivation).
    assert full == CASES
    assert top_bottom < CASES
    assert top_bottom >= CASES // 4  # top/bottom still covers many intents

    report(
        "§7 ablation: intent coverage by disambiguation mode",
        f"random (policy, intended position) cases: {CASES}\n"
        f"FULL (§4 binary search):   {full}/{CASES} realised\n"
        f"TOP_BOTTOM (prototype):    {top_bottom}/{CASES} realised\n\n"
        "the prototype's restriction loses middle placements, matching "
        "the paper's stated limitation",
    )
