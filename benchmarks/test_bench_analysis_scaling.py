"""Benchmark: analysis-engine scaling (supporting measurement).

The §3 study runs pairwise overlap analysis over thousands of policies
and the disambiguator runs differential comparisons per question; this
bench measures how both scale with policy size, confirming the expected
quadratic (pairs) and roughly linear-per-cell (compare) growth — the
costs that make the approach laptop-feasible at the paper's corpus
sizes.
"""

import random
import time

from repro import obs
from repro.analysis import compare_route_policies
from repro.config import parse_config
from repro.overlap import acl_overlap_report
from repro.synth.builders import PrefixPool, crossing_acl


def time_overlap_analysis(rules: int) -> float:
    rng = random.Random(42)
    acl = crossing_acl("X", rng, PrefixPool(rng), permits=rules // 2, denies=rules - rules // 2)
    start = time.perf_counter()
    report = acl_overlap_report(acl)
    elapsed = time.perf_counter() - start
    assert report.overlap_count == (rules // 2) * (rules - rules // 2)
    return elapsed


def build_route_map(stanzas: int):
    lines = []
    for i in range(stanzas):
        lines.append(f"route-map RM permit {10 * (i + 1)}")
        lines.append(f" match metric {i}")
        lines.append(f" set local-preference {100 + i}")
    return parse_config("\n".join(lines))


def time_compare(stanzas: int) -> float:
    store_a = build_route_map(stanzas)
    text_b = "route-map RM deny 10\n match metric 0\n"
    store_b = parse_config(
        text_b
        + "\n".join(
            f"route-map RM permit {10 * (i + 1)}\n match metric {i}\n"
            f" set local-preference {100 + i}"
            for i in range(1, stanzas)
        )
    )
    start = time.perf_counter()
    diffs = compare_route_policies(
        store_a.route_map("RM"), store_b.route_map("RM"), store_a, store_b
    )
    elapsed = time.perf_counter() - start
    assert diffs  # the two policies differ on metric-0 routes
    return elapsed


def test_bench_overlap_scaling(benchmark, report):
    sizes = (8, 16, 32, 64)

    def sweep():
        return [(n, time_overlap_analysis(n)) for n in sizes]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'rules':<8}{'overlap analysis (s)':<24}{'pairs'}"]
    for n, elapsed in rows:
        obs.observe(f"span.bench.overlap.{n}", elapsed)
        lines.append(f"{n:<8}{elapsed:<24.4f}{(n // 2) * (n - n // 2)}")
    # Quadratic-ish growth: 64 rules cost more than 8 rules, but the
    # largest case still completes fast enough for corpus-scale studies.
    assert rows[-1][1] < 5.0
    report("overlap-analysis scaling", "\n".join(lines))


def time_reachability(rules: int) -> float:
    """First-match reachability on a shadowed ACL (permits + catch-all).

    This is the shape that made DNF-complement subtraction exponential;
    the rectangle-carving subtraction keeps it near-linear, and this
    bench guards against regressing that.
    """
    from repro.analysis import acl_reachable_spaces
    from repro.synth.builders import PrefixPool, shadowed_acl

    rng = random.Random(42)
    acl = shadowed_acl("S", rng, PrefixPool(rng), permits=rules - 1)
    start = time.perf_counter()
    reaches = acl_reachable_spaces(acl, include_implicit_deny=True)
    elapsed = time.perf_counter() - start
    assert len(reaches) == rules + 1
    return elapsed


def test_bench_reachability_scaling(benchmark, report):
    sizes = (8, 16, 32, 64)

    def sweep():
        return [(n, time_reachability(n)) for n in sizes]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'rules':<8}{'reachable-spaces (s)'}"]
    for n, elapsed in rows:
        obs.observe(f"span.bench.reach.{n}", elapsed)
        lines.append(f"{n:<8}{elapsed:.4f}")
    # Exponential blow-up would make 64 rules take minutes; the carved
    # subtraction keeps it well under a second.
    assert rows[-1][1] < 2.0
    report("first-match reachability scaling (shadowed ACLs)", "\n".join(lines))


def test_bench_compare_scaling(benchmark, report):
    sizes = (2, 4, 8, 16)

    def sweep():
        return [(n, time_compare(n)) for n in sizes]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'stanzas':<9}{'compare_route_policies (s)'}"]
    for n, elapsed in rows:
        obs.observe(f"span.bench.compare.{n}", elapsed)
        lines.append(f"{n:<9}{elapsed:.4f}")
    assert rows[-1][1] < 10.0
    report("differential-comparison scaling", "\n".join(lines))
